package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"dnsencryption.info/doe/internal/geo"
)

// Dial errors, distinguishable the way a measurement client distinguishes
// connection refusal from silence.
var (
	ErrRefused   = errors.New("netsim: connection refused")
	ErrBlackhole = &blackholeError{}
	ErrNoRoute   = errors.New("netsim: no such host/port")
)

type blackholeError struct{}

func (*blackholeError) Error() string   { return "netsim: i/o timeout (blackholed)" }
func (*blackholeError) Timeout() bool   { return true }
func (*blackholeError) Temporary() bool { return true }

// Proto distinguishes stream (TCP-like) from datagram (UDP-like) traffic for
// policy decisions.
type Proto int

// Protocols.
const (
	Stream Proto = iota
	Datagram
)

// Action is a middlebox decision about a connection attempt.
type Action int

// Policy actions. ActNext lets the next policy decide.
const (
	ActNext Action = iota
	ActAllow
	ActRefuse
	ActBlackhole
	ActRedirect // hand the stream to Verdict.Handler instead of the target
	ActSpoof    // answer the datagram with Verdict.Spoof's payload
)

// Verdict is a policy decision.
type Verdict struct {
	Action  Action
	Handler RedirectHandler
	Spoof   func(req []byte) []byte
}

// RedirectHandler serves a redirected stream. dst is the address the client
// believed it was connecting to.
type RedirectHandler func(conn *Conn, dst Addr)

// DialPolicy models an in-path middlebox consulted on every connection
// attempt, in registration order.
type DialPolicy interface {
	Decide(w *World, from, to netip.Addr, port uint16, proto Proto) Verdict
}

// PolicyFunc adapts a function to DialPolicy.
type PolicyFunc func(w *World, from, to netip.Addr, port uint16, proto Proto) Verdict

// Decide implements DialPolicy.
func (f PolicyFunc) Decide(w *World, from, to netip.Addr, port uint16, proto Proto) Verdict {
	return f(w, from, to, port, proto)
}

// StreamHandler serves one accepted connection.
type StreamHandler func(conn *Conn)

// DatagramHandler answers one datagram exchange. proc is the virtual
// server-side processing time to charge on top of the path RTT (cache hits
// are fast; recursive resolution to faraway nameservers is slow).
type DatagramHandler func(from netip.Addr, req []byte) (resp []byte, proc time.Duration, err error)

// DialFault describes faults injected into one stream dial attempt.
// The zero value is a clean dial.
type DialFault struct {
	// Drop loses the SYN: the dial fails like a blackhole (timeout).
	Drop bool
	// Refuse actively resets the SYN: the dial fails with ErrRefused.
	Refuse bool
	// ExtraLatency is a stall charged to the connection's virtual clock on
	// top of the handshake RTT (a loss/retransmission episode).
	ExtraLatency time.Duration
	// CutAfterSegments, when > 0, resets the connection in place of the
	// Nth segment the client would receive (1 = before any server data:
	// a truncated TLS handshake; larger = a mid-stream RST).
	CutAfterSegments int
}

// DatagramFault describes faults injected into one datagram exchange.
type DatagramFault struct {
	// Drop loses the datagram (or its response): the exchange times out.
	Drop bool
	// ExtraLatency inflates the exchange's virtual elapsed time.
	ExtraLatency time.Duration
}

// FaultInjector decides, per flow, which faults to inject. Implementations
// MUST be deterministic functions of their own seed, the flow tuple and
// per-tuple attempt history — never of wall-clock time or of dial order
// across different tuples — or report byte-identity across worker counts
// breaks. Policies win over faults: refused/blackholed verdicts are never
// consulted, while allowed and redirected flows are.
type FaultInjector interface {
	StreamFault(from, to netip.Addr, port uint16) DialFault
	DatagramFault(from, to netip.Addr, port uint16) DatagramFault
}

// World is the simulated Internet.
type World struct {
	Geo *geo.Registry
	RTT *geo.RTTModel

	mu        sync.RWMutex
	listeners map[Addr]*Listener
	dgrams    map[Addr]*dgramService
	policies  []DialPolicy
	faults    FaultInjector

	seed int64

	// JitterFrac adds up to this fraction of extra delay per wait.
	JitterFrac float64
	// HandshakeRTTs is the virtual cost of connection establishment,
	// charged by Dial (1 = TCP three-way handshake).
	HandshakeRTTs float64

	ephemeral atomic.Uint32
}

type dgramService struct {
	handler DatagramHandler
}

// NewWorld creates an empty world with the built-in geography.
func NewWorld(seed int64) *World {
	return &World{
		Geo:           &geo.Registry{},
		RTT:           geo.NewRTTModel(),
		listeners:     make(map[Addr]*Listener),
		dgrams:        make(map[Addr]*dgramService),
		seed:          seed,
		JitterFrac:    0.10,
		HandshakeRTTs: 1,
	}
}

// AddPolicy appends a middlebox policy; earlier policies win.
func (w *World) AddPolicy(p DialPolicy) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.policies = append(w.policies, p)
}

// SetFaults installs inj as the world's fault-injection layer (nil
// disables it, the default). Faults compose with policies: a policy
// verdict of Refuse/Blackhole wins, everything the policies let through —
// including redirected (intercepted) flows — is subject to faults.
func (w *World) SetFaults(inj FaultInjector) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.faults = inj
}

func (w *World) faultInjector() FaultInjector {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.faults
}

// Listen opens a net.Listener for ip:port, replacing any previous one.
func (w *World) Listen(ip netip.Addr, port uint16) (*Listener, error) {
	addr := Addr{IP: ip, Port: port}
	l := newListener(addr)
	w.mu.Lock()
	defer w.mu.Unlock()
	if old, ok := w.listeners[addr]; ok {
		old.Close()
	}
	w.listeners[addr] = l
	return l, nil
}

// RegisterStream runs handler in a goroutine for every connection accepted
// on ip:port.
func (w *World) RegisterStream(ip netip.Addr, port uint16, handler StreamHandler) {
	l, _ := w.Listen(ip, port)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go handler(c.(*Conn))
		}
	}()
}

// NumListeners reports how many stream services are currently installed.
// The lazy-world tests pin the streaming-campaign invariant with it:
// vantage-edge listeners in flight stay O(workers), never O(population).
func (w *World) NumListeners() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.listeners)
}

// CloseService removes the stream service on ip:port.
func (w *World) CloseService(ip netip.Addr, port uint16) {
	addr := Addr{IP: ip, Port: port}
	w.mu.Lock()
	defer w.mu.Unlock()
	if l, ok := w.listeners[addr]; ok {
		l.Close()
		delete(w.listeners, addr)
	}
}

// RegisterDatagram installs a datagram service on ip:port.
func (w *World) RegisterDatagram(ip netip.Addr, port uint16, handler DatagramHandler) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.dgrams[Addr{IP: ip, Port: port}] = &dgramService{handler: handler}
}

// CloseDatagram removes the datagram service on ip:port — the datagram
// analog of CloseService, used by population churn (a DoQ resolver going
// dark between scan rounds).
func (w *World) CloseDatagram(ip netip.Addr, port uint16) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.dgrams, Addr{IP: ip, Port: port})
}

// HasDatagram reports whether a datagram service is registered on ip:port,
// ignoring policies. Tests and world builders use it; measurements must go
// through Exchange.
func (w *World) HasDatagram(ip netip.Addr, port uint16) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	_, ok := w.dgrams[Addr{IP: ip, Port: port}]
	return ok
}

// DatagramAddrs returns every address with a datagram service on port, in
// unspecified order. World builders use it to compile ground-truth lists.
func (w *World) DatagramAddrs(port uint16) []netip.Addr {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var addrs []netip.Addr
	for a := range w.dgrams {
		if a.Port == port {
			addrs = append(addrs, a.IP)
		}
	}
	return addrs
}

// HasStream reports whether a stream service is registered on ip:port,
// ignoring policies. Tests and world builders use it; measurements must go
// through Dial.
func (w *World) HasStream(ip netip.Addr, port uint16) bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	_, ok := w.listeners[Addr{IP: ip, Port: port}]
	return ok
}

// StreamAddrs returns every address with a service on port, in unspecified
// order. World builders use it to compile ground-truth lists.
func (w *World) StreamAddrs(port uint16) []netip.Addr {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var addrs []netip.Addr
	for a := range w.listeners {
		if a.Port == port {
			addrs = append(addrs, a.IP)
		}
	}
	return addrs
}

// flowRNG derives a connection's jitter stream from the flow tuple and the
// world seed alone, never from dial order: jitter is a property of the path,
// so concurrent dialers observe exactly the latencies a serial sweep would.
// Connections sharing a (from, to, port) tuple replay the same jitter
// stream, which is the price of schedule independence.
func (w *World) flowRNG(from, to netip.Addr, port uint16) *rand.Rand {
	h := fnv.New64a()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(w.seed))
	h.Write(buf[:])
	b, _ := from.MarshalBinary()
	h.Write(b)
	b, _ = to.MarshalBinary()
	h.Write(b)
	binary.BigEndian.PutUint64(buf[:], uint64(port))
	h.Write(buf[:])
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

func (w *World) decide(from, to netip.Addr, port uint16, proto Proto) Verdict {
	w.mu.RLock()
	policies := w.policies
	w.mu.RUnlock()
	for _, p := range policies {
		v := p.Decide(w, from, to, port, proto)
		if v.Action != ActNext {
			return v
		}
	}
	return Verdict{Action: ActAllow}
}

// pathRTT returns the modeled round-trip time between two addresses.
func (w *World) pathRTT(from, to netip.Addr) time.Duration {
	ms := w.RTT.RTTMillis(w.Geo.Country(from), w.Geo.Country(to))
	return time.Duration(ms * float64(time.Millisecond))
}

// PathRTT exposes the modeled round-trip time between two addresses, so
// relays (the proxy platforms' datagram legs) can compose multi-hop latency
// without opening a stream.
func (w *World) PathRTT(from, to netip.Addr) time.Duration { return w.pathRTT(from, to) }

// Dial opens a stream from the client address `from` to `to:port`,
// traversing middlebox policies. The returned Conn's Elapsed already
// includes the connection-establishment RTT.
func (w *World) Dial(from, to netip.Addr, port uint16) (*Conn, error) {
	v := w.decide(from, to, port, Stream)
	switch v.Action {
	case ActRefuse:
		return nil, ErrRefused
	case ActBlackhole:
		return nil, ErrBlackhole
	}
	// Deliberate middlebox verdicts above win over the fault layer; flows
	// the policies let through — allowed or redirected — are as lossy as
	// the injector says the path is.
	var fault DialFault
	if inj := w.faultInjector(); inj != nil {
		fault = inj.StreamFault(from, to, port)
	}
	switch {
	case fault.Drop:
		return nil, ErrBlackhole
	case fault.Refuse:
		return nil, ErrRefused
	}
	var serve func(server *Conn)
	if v.Action == ActRedirect {
		serve = func(server *Conn) {
			// Handlers block on I/O, so they must not run on the
			// dialer's goroutine.
			go v.Handler(server, Addr{IP: to, Port: port})
		}
	} else {
		w.mu.RLock()
		l, ok := w.listeners[Addr{IP: to, Port: port}]
		w.mu.RUnlock()
		if !ok {
			return nil, ErrRefused
		}
		serve = func(server *Conn) {
			if err := l.deliver(server); err != nil {
				server.Close()
			}
		}
	}
	client, err := w.connectExtra(from, to, port, fault.ExtraLatency, serve)
	if err != nil {
		return nil, err
	}
	if fault.CutAfterSegments > 0 {
		client.armReset(fault.CutAfterSegments)
	}
	return client, nil
}

func (w *World) connect(from, to netip.Addr, port uint16, serve func(server *Conn)) (*Conn, error) {
	return w.connectExtra(from, to, port, 0, serve)
}

// connectExtra establishes the conn pair, charging connection setup (the
// handshake RTTs plus any in-path extra delay) to BOTH endpoint clocks
// before the server handler starts: establishment is experienced by both
// ends, and charging it up front keeps the peer's clock free of concurrent
// mutation once its goroutine is running.
func (w *World) connectExtra(from, to netip.Addr, port uint16, extra time.Duration, serve func(server *Conn)) (*Conn, error) {
	clientAddr := Addr{IP: from, Port: uint16(32768 + w.ephemeral.Add(1)%32768)}
	serverAddr := Addr{IP: to, Port: port}
	rtt := w.pathRTT(from, to)
	client, server := Pair(clientAddr, serverAddr, rtt, w.flowRNG(from, to, port), w.JitterFrac)
	setup := time.Duration(float64(rtt)*w.HandshakeRTTs) + extra
	client.clk.add(setup)
	server.clk.add(setup)
	serve(server)
	return client, nil
}

// Exchange performs one datagram round trip (UDP-like). It returns the
// response payload and the virtual elapsed time.
func (w *World) Exchange(from, to netip.Addr, port uint16, req []byte) ([]byte, time.Duration, error) {
	v := w.decide(from, to, port, Datagram)
	rtt := w.pathRTT(from, to)
	switch v.Action {
	case ActRefuse:
		return nil, 0, ErrRefused
	case ActBlackhole:
		return nil, 0, ErrBlackhole
	case ActSpoof:
		// Injected responses arrive faster than the genuine server's:
		// the injector sits in-path.
		return v.Spoof(req), rtt / 2, nil
	}
	var fault DatagramFault
	if inj := w.faultInjector(); inj != nil {
		fault = inj.DatagramFault(from, to, port)
	}
	if fault.Drop {
		return nil, 0, ErrBlackhole
	}
	w.mu.RLock()
	svc, ok := w.dgrams[Addr{IP: to, Port: port}]
	w.mu.RUnlock()
	if !ok {
		return nil, 0, ErrNoRoute
	}
	resp, proc, err := svc.handler(from, req)
	if err != nil {
		return nil, 0, err
	}
	return resp, rtt + proc + fault.ExtraLatency, nil
}

// String summarizes the world for diagnostics.
func (w *World) String() string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return fmt.Sprintf("netsim.World{streams: %d, datagrams: %d, policies: %d}",
		len(w.listeners), len(w.dgrams), len(w.policies))
}
