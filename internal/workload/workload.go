// Package workload synthesizes the long-term traffic the paper's passive
// datasets observed: 18 months of DoT flows toward public resolvers through
// the ISP backbone (feeding internal/netflow), port-853 scanning campaigns
// (exercising internal/scandetect), and DoH bootstrap-domain lookups
// (feeding internal/passivedns).
//
// The real traffic is proprietary; this generator is the documented
// substitution. Its knobs — monthly volumes, giant-netblock share,
// temporary-user churn, per-domain growth curves — are calibrated in
// internal/core so the pipeline reproduces the *shapes* of Figs. 11–13.
package workload

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"dnsencryption.info/doe/internal/netflow"
	"dnsencryption.info/doe/internal/passivedns"
)

// Month is a "2006-01" label.
type Month = string

// MonthsBetween lists months from first to last inclusive.
func MonthsBetween(first, last Month) []Month {
	start, err := time.Parse("2006-01", first)
	if err != nil {
		panic(fmt.Sprintf("workload: bad month %q", first))
	}
	end, err := time.Parse("2006-01", last)
	if err != nil {
		panic(fmt.Sprintf("workload: bad month %q", last))
	}
	var out []Month
	for m := start; !m.After(end); m = m.AddDate(0, 1, 0) {
		out = append(out, m.Format("2006-01"))
	}
	return out
}

// ProviderTraffic describes one resolver's organic DoT adoption.
type ProviderTraffic struct {
	Provider string
	Resolver netip.Addr
	// MonthlyFlows is the organic (pre-sampling) flow count per month;
	// months absent from the map see no traffic (service not launched).
	MonthlyFlows map[Month]int
}

// DoTGenerator synthesizes client DoT flows.
type DoTGenerator struct {
	Seed      int64
	Providers []ProviderTraffic
	// GiantNetblocks is how many heavy /24s exist (§5.2: the top five
	// /24s carry 44% of Cloudflare's DoT flows; giants are ISP NAT or
	// proxy egresses active for weeks or months).
	GiantNetblocks int
	// GiantShare is the fraction of each month's flows from giants.
	GiantShare float64
	// MediumNetblocks/MediumShare form the next tier (§5.2: the top 20
	// /24s carry 60% of flows).
	MediumNetblocks int
	MediumShare     float64
	// LongTempFraction is the share of temporary netblocks whose burst
	// spans more than a week (§5.2: 96% are active less than one week,
	// so about 4% persist longer).
	LongTempFraction float64
	// TempFlowsEach is roughly how many flows one temporary netblock
	// produces inside its short activity window.
	TempFlowsEach int
	// PacketsPerFlow is the mean packet count of one DoT session.
	PacketsPerFlow int
	// ClientBase is the first address of the client /24 pool.
	ClientBase netip.Addr
}

// NewDoTGenerator returns a generator with study defaults.
func NewDoTGenerator(seed int64) *DoTGenerator {
	return &DoTGenerator{
		Seed:             seed,
		GiantNetblocks:   5,
		GiantShare:       0.44,
		MediumNetblocks:  15,
		MediumShare:      0.16,
		LongTempFraction: 0.045,
		TempFlowsEach:    3,
		PacketsPerFlow:   10,
		ClientBase:       netip.MustParseAddr("40.0.0.0"),
	}
}

func (g *DoTGenerator) client24(index int) netip.Addr {
	base := g.ClientBase.As4()
	v := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8
	v += uint32(index) << 8
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), 0})
}

// Generate feeds the whole period's packets through the router in time
// order and returns the number of organic flows produced.
func (g *DoTGenerator) Generate(router *netflow.Router) int {
	rng := rand.New(rand.NewSource(g.Seed))
	months := map[Month]bool{}
	for _, p := range g.Providers {
		for m := range p.MonthlyFlows {
			months[m] = true
		}
	}
	ordered := sortedMonths(months)

	tempIndex := g.GiantNetblocks + g.MediumNetblocks // temps after the heavy tiers
	totalFlows := 0
	for _, month := range ordered {
		start, _ := time.Parse("2006-01", month)
		type flowPlan struct {
			at       time.Time
			client   netip.Addr
			resolver netip.Addr
		}
		var plans []flowPlan
		for _, p := range g.Providers {
			n := p.MonthlyFlows[month]
			if n == 0 {
				continue
			}
			totalFlows += n
			giants := int(float64(n) * g.GiantShare)
			for i := 0; i < giants; i++ {
				day := rng.Intn(28)
				client := g.client24(rng.Intn(g.GiantNetblocks))
				plans = append(plans, flowPlan{
					at:       start.AddDate(0, 0, day).Add(time.Duration(rng.Intn(86400)) * time.Second),
					client:   client,
					resolver: p.Resolver,
				})
			}
			mediums := 0
			if g.MediumNetblocks > 0 {
				mediums = int(float64(n) * g.MediumShare)
				for i := 0; i < mediums; i++ {
					day := rng.Intn(28)
					client := g.client24(g.GiantNetblocks + rng.Intn(g.MediumNetblocks))
					plans = append(plans, flowPlan{
						at:       start.AddDate(0, 0, day).Add(time.Duration(rng.Intn(86400)) * time.Second),
						client:   client,
						resolver: p.Resolver,
					})
				}
			}
			// Temporary users: short bursts from fresh netblocks.
			remaining := n - giants - mediums
			for remaining > 0 {
				windowDays := 1 + rng.Intn(5) // active < 1 week
				burst := g.TempFlowsEach
				if rng.Float64() < g.LongTempFraction {
					// The persistent ≈4%: active for one to three
					// weeks, one flow per active day.
					windowDays = 8 + rng.Intn(14)
					burst = windowDays
				}
				windowStart := rng.Intn(max(1, 28-windowDays))
				if burst > remaining {
					burst = remaining
				}
				remaining -= burst
				client := g.client24(tempIndex)
				tempIndex++
				for i := 0; i < burst; i++ {
					day := windowStart + i*windowDays/burst
					plans = append(plans, flowPlan{
						at:       start.AddDate(0, 0, day).Add(time.Duration(rng.Intn(86400)) * time.Second),
						client:   client,
						resolver: p.Resolver,
					})
				}
			}
		}
		sort.Slice(plans, func(i, j int) bool { return plans[i].at.Before(plans[j].at) })
		for _, plan := range plans {
			g.emitFlow(router, rng, plan.at, plan.client, plan.resolver)
		}
	}
	return totalFlows
}

func sortedMonths(set map[Month]bool) []Month {
	out := make([]Month, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// emitFlow produces one DoT session's packets: handshake, framed queries,
// teardown. The client host byte varies within the /24.
func (g *DoTGenerator) emitFlow(router *netflow.Router, rng *rand.Rand, at time.Time, client24, resolver netip.Addr) {
	b := client24.As4()
	b[3] = byte(1 + rng.Intn(254))
	src := netip.AddrFrom4(b)
	srcPort := uint16(32768 + rng.Intn(28000))
	pkts := g.PacketsPerFlow/2 + rng.Intn(g.PacketsPerFlow)
	if pkts < 3 {
		pkts = 3
	}
	for i := 0; i < pkts; i++ {
		flags := netflow.FlagACK
		switch i {
		case 0:
			flags = netflow.FlagSYN
		case pkts - 1:
			flags = netflow.FlagFIN | netflow.FlagACK
		default:
			if rng.Intn(2) == 0 {
				flags |= netflow.FlagPSH
			}
		}
		router.Observe(netflow.Packet{
			Time:    at.Add(time.Duration(i) * 200 * time.Millisecond),
			Src:     src,
			Dst:     resolver,
			SrcPort: srcPort,
			DstPort: 853,
			Proto:   netflow.ProtoTCP,
			Bytes:   100 + rng.Intn(400),
			Flags:   flags,
		})
	}
}

// GenerateScan emits a port-853 SYN sweep from one source across many
// destinations on a single day — the kind of traffic §5.2 screens out.
func GenerateScan(router *netflow.Router, src netip.Addr, at time.Time, destinations int) {
	for i := 0; i < destinations; i++ {
		dst := netip.AddrFrom4([4]byte{60, byte(i >> 16), byte(i >> 8), byte(i)})
		router.Observe(netflow.Packet{
			Time:    at.Add(time.Duration(i) * 50 * time.Millisecond),
			Src:     src,
			Dst:     dst,
			SrcPort: 45000,
			DstPort: 853,
			Proto:   netflow.ProtoTCP,
			Bytes:   44,
			Flags:   netflow.FlagSYN,
		})
	}
}

// DoHDomainTraffic describes lookups of one DoH bootstrap domain.
type DoHDomainTraffic struct {
	Domain string
	// MonthlyQueries per month; the passive DNS sensor records them
	// spread across the month's days.
	MonthlyQueries map[Month]int
}

// GenerateDoH feeds bootstrap-domain lookups into the passive DNS DB.
func GenerateDoH(db *passivedns.DB, domains []DoHDomainTraffic) {
	for _, d := range domains {
		for month, n := range d.MonthlyQueries {
			start, err := time.Parse("2006-01", month)
			if err != nil || n <= 0 {
				continue
			}
			perDay := n / 28
			extra := n - perDay*28
			for day := 0; day < 28; day++ {
				count := perDay
				if day < extra {
					count++
				}
				if count > 0 {
					db.ObserveCount(start.AddDate(0, 0, day), d.Domain, count)
				}
			}
		}
	}
}
