package lint

import (
	"go/ast"
	"go/types"
)

// analyzerSimsleep flags real-time blocking — time.Sleep and time.After —
// inside simulation packages (Config.SimulationPackages). The measurement
// pipeline runs on a virtual clock: latency is modeled by netsim's
// AddLatency/Elapsed accounting, never by actually blocking the goroutine.
// A real sleep is worse than a wall-clock read (the determinism check's
// territory): it silently stretches test wall time, and under the parallel
// runner it serializes workers without changing any reported number, so it
// hides as "the suite got slow" rather than failing loudly.
var analyzerSimsleep = &Analyzer{
	Name: "simsleep",
	Doc:  "no real time.Sleep/time.After in simulation packages (virtual clock only)",
	Run:  runSimsleep,
}

// realBlockFuncs are the time package calls that block on (or schedule
// against) the wall clock instead of the simulated one.
var realBlockFuncs = map[string]bool{
	"Sleep": true,
	"After": true,
}

func runSimsleep(pass *Pass) {
	if !pass.Config.IsSimulation(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			if pkgName.Imported().Path() == "time" && realBlockFuncs[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"real time.%s in simulation package %s; model delay with the virtual clock (netsim AddLatency) instead",
					sel.Sel.Name, pass.Pkg.Path())
			}
			return true
		})
	}
}
