package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// analyzerBufown enforces the bufpool ownership contract (DESIGN.md §9):
// every buffer acquired with bufpool.Get must reach a bufpool.Put on every
// return path of the owning function, or be handed to a new owner through
// an explicitly annotated transfer (//doelint:transfer -- <who owns it
// now>). A handoff to a helper whose transitive facts include bufpool.Put
// discharges the obligation without an annotation — the call graph proves
// the buffer comes back to the pool. Using the buffer (or an alias of it)
// after an executed Put is always a finding: the pool may have re-issued
// the memory to another goroutine.
//
// The check is lexical like connclose — a Put in an earlier branch
// satisfies a later return — but unlike connclose, error-guarded returns
// are NOT exempt: a pooled buffer is live the instant Get returns, so an
// early error return without Put is precisely the leak this check exists
// to catch.
var analyzerBufown = &Analyzer{
	Name: "bufown",
	Doc:  "bufpool.Get must reach Put on all return paths (or an annotated //doelint:transfer); no use after Put",
	Run:  runBufown,
}

func runBufown(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBufFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkBufFunc(pass, fn.Body)
			}
			return true
		})
	}
}

// isBufpoolFunc resolves a call to the module's bufpool package and
// reports whether it is the named function.
func isBufpoolFunc(pass *Pass, call *ast.CallExpr, name string) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.objectOf(fun)
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	default:
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return isBufpoolPath(fn.Pkg().Path()) && fn.Name() == name
}

// bufAcq is one tracked bufpool.Get whose result landed in a local.
type bufAcq struct {
	obj  types.Object
	pos  token.Pos
	name string
}

// putSite is one executed (non-deferred) bufpool.Put with the lexical
// range it poisons for subsequent uses.
type putSite struct {
	pos       token.Pos
	poisonEnd token.Pos
}

// bufUses partitions the uses of one acquired buffer.
type bufUses struct {
	puts      []putSite
	deferPuts []token.Pos
	handoffs  []token.Pos // annotated transfers and proven pool-returning calls
	reacqs    []token.Pos // v = bufpool.Get(...) reassignments reset the poison
	plainUses []token.Pos // reads/writes through the buffer (use-after-put candidates)
	reported  []token.Pos // uses already reported inline (bad handoffs, unannotated escapes)
}

func checkBufFunc(pass *Pass, body *ast.BlockStmt) {
	acqs, escapes := findBufAcquisitions(pass, body)
	// A Get whose result never lands in a local has already escaped at the
	// acquisition itself (composite literal, field store, call argument):
	// ownership leaves this function on line one, so the line must carry a
	// transfer annotation.
	for _, pos := range escapes {
		if !pass.Dirs.transferAt(pass.Fset, pos) {
			pass.Reportf(pos,
				"bufpool.Get escapes at acquisition without an ownership annotation; Put it in this function or annotate //doelint:transfer -- <who owns it now>")
		}
	}
	for _, acq := range acqs {
		uses := collectBufUses(pass, body, acq)
		// A use already reported inline (bad handoff, unannotated escape)
		// counts as discharged here: one finding per defect, not two.
		discharged := len(uses.puts) > 0 || len(uses.deferPuts) > 0 ||
			len(uses.handoffs) > 0 || len(uses.reported) > 0
		if !discharged {
			pass.Reportf(acq.pos,
				"%s acquired from bufpool.Get is never returned to the pool (no Put, no annotated transfer)", acq.name)
			continue
		}
		if len(uses.deferPuts) == 0 {
			for _, ret := range collectBufReturns(body, acq.pos) {
				if !anyPutBefore(uses, ret.End()) {
					pass.Reportf(ret.Pos(),
						"return without bufpool.Put(%s) (acquired at line %d) and no deferred Put pending — pooled buffers leak on early returns",
						acq.name, pass.Fset.Position(acq.pos).Line)
					break // one report per acquisition keeps the signal readable
				}
			}
		}
		reportUseAfterPut(pass, acq, uses)
	}
}

func anyPutBefore(uses bufUses, limit token.Pos) bool {
	for _, p := range uses.puts {
		if p.pos < limit {
			return true
		}
	}
	for _, p := range uses.handoffs {
		if p < limit {
			return true
		}
	}
	return false
}

// findBufAcquisitions scans this function's own statements (not nested
// literals) for bufpool.Get calls, splitting them into tracked locals and
// escapes-at-acquisition.
func findBufAcquisitions(pass *Pass, body *ast.BlockStmt) (acqs []bufAcq, escapes []token.Pos) {
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBufpoolFunc(pass, call, "Get") {
			return true
		}
		if as, ok := parentAt(stack, 1).(*ast.AssignStmt); ok {
			for i, rhs := range as.Rhs {
				if rhs != ast.Expr(call) || i >= len(as.Lhs) {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.objectOf(id); obj != nil {
						acqs = append(acqs, bufAcq{obj: obj, pos: call.Pos(), name: id.Name})
						return true
					}
				}
			}
		}
		escapes = append(escapes, call.Pos())
		return true
	})
	return acqs, escapes
}

func collectBufUses(pass *Pass, body *ast.BlockStmt, acq bufAcq) bufUses {
	var uses bufUses
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() < acq.pos {
			return true
		}
		if pass.Info.Uses[id] != acq.obj && pass.Info.Defs[id] != acq.obj {
			return true
		}
		classifyBufUse(pass, &uses, stack, id)
		return true
	})
	return uses
}

// classifyBufUse walks outward from one identifier use and files it into
// the right bucket.
func classifyBufUse(pass *Pass, uses *bufUses, stack []ast.Node, id *ast.Ident) {
	parent := parentAt(stack, 1)

	// v = bufpool.Get(...) reassignment: a fresh obligation, not a use.
	if as, ok := parent.(*ast.AssignStmt); ok {
		for i, lhs := range as.Lhs {
			if lhs == ast.Expr(id) && i < len(as.Rhs) {
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isBufpoolFunc(pass, call, "Get") {
					uses.reacqs = append(uses.reacqs, id.Pos())
					return
				}
			}
		}
	}

	// Dereference, slice, or index through the buffer: a read or write of
	// the bytes, never an ownership event — but it is a use for the
	// use-after-put rule.
	switch parent.(type) {
	case *ast.StarExpr, *ast.SliceExpr, *ast.IndexExpr, *ast.UnaryExpr:
		uses.plainUses = append(uses.plainUses, id.Pos())
		return
	}

	// The pointer itself as a call argument.
	if call, ok := enclosingCallArg(stack, id); ok {
		if isBufpoolFunc(pass, call, "Put") {
			if underDefer(stack) {
				uses.deferPuts = append(uses.deferPuts, id.Pos())
			} else if goroutineCapture(stack) {
				uses.handoffs = append(uses.handoffs, id.Pos())
			} else {
				uses.puts = append(uses.puts, putSite{
					pos:       call.Pos(),
					poisonEnd: poisonEnd(stack, call),
				})
			}
			return
		}
		if calleePutsBuffer(pass, call) || pass.Dirs.transferAt(pass.Fset, id.Pos()) {
			uses.handoffs = append(uses.handoffs, id.Pos())
			return
		}
		pass.Reportf(id.Pos(),
			"pooled buffer %s handed to %s, which never returns it to the pool; Put it here or annotate //doelint:transfer -- <who owns it now>",
			id.Name, calleeName(call))
		uses.reported = append(uses.reported, id.Pos())
		return
	}

	// Ownership-moving positions: return, struct/composite storage,
	// channel send, goroutine capture. All need an annotated transfer.
	if escapesOwnership(stack, id) {
		if pass.Dirs.transferAt(pass.Fset, id.Pos()) {
			uses.handoffs = append(uses.handoffs, id.Pos())
			return
		}
		pass.Reportf(id.Pos(),
			"pooled buffer %s escapes this function (stored, returned, or sent) without an ownership annotation; annotate //doelint:transfer -- <who owns it now>",
			id.Name)
		uses.reported = append(uses.reported, id.Pos())
		return
	}
	uses.plainUses = append(uses.plainUses, id.Pos())
}

// enclosingCallArg reports the call for which the identifier itself (not a
// projection of it) is an argument.
func enclosingCallArg(stack []ast.Node, id *ast.Ident) (*ast.CallExpr, bool) {
	var child ast.Node = id
	for i := len(stack) - 2; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.ParenExpr:
			child = anc
			continue
		case *ast.CallExpr:
			if anc.Fun == child {
				return nil, false
			}
			for _, arg := range anc.Args {
				if arg == child {
					return anc, true
				}
			}
			return nil, false
		default:
			return nil, false
		}
	}
	return nil, false
}

// calleePutsBuffer consults the call graph: a helper whose transitive
// facts include bufpool.Put is a proven ownership sink.
func calleePutsBuffer(pass *Pass, call *ast.CallExpr) bool {
	if pass.Graph == nil {
		return false
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.objectOf(fun)
	case *ast.SelectorExpr:
		if sel := pass.Info.Selections[fun]; sel != nil {
			obj = sel.Obj()
		} else {
			obj = pass.Info.Uses[fun.Sel]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return pass.Graph.TransFacts(funcID(fn))&FactBufPut != 0
}

// escapesOwnership reports whether a bare identifier use moves the buffer
// out of this function's hands: return, composite literal, field store,
// channel send, or capture in a go-launched closure.
func escapesOwnership(stack []ast.Node, id *ast.Ident) bool {
	if goroutineCapture(stack) {
		return true
	}
	var child ast.Node = id
	for i := len(stack) - 2; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.ParenExpr:
		case *ast.CompositeLit, *ast.KeyValueExpr:
			return true
		case *ast.ReturnStmt, *ast.SendStmt:
			return true
		case *ast.AssignStmt:
			for j, rhs := range anc.Rhs {
				if rhs != child {
					continue
				}
				if j < len(anc.Lhs) {
					if _, ok := anc.Lhs[j].(*ast.Ident); ok {
						return false // plain local alias: ownership stays here
					}
				}
				return true // stored through a selector or index: escapes
			}
			return false
		case ast.Stmt, ast.Decl:
			return false
		}
		child = stack[i]
	}
	return false
}

// poisonEnd computes how far past an executed Put subsequent uses are
// unreachable-safe: when the statements following the Put in its own block
// end in a terminator (return/branch/panic), control rejoins the outer
// code without the buffer, so only the rest of that block is poisoned.
// Otherwise the poison extends to the end of the function.
func poisonEnd(stack []ast.Node, put *ast.CallExpr) token.Pos {
	var innerBlock *ast.BlockStmt
	var stmtInBlock ast.Stmt
	for i := len(stack) - 1; i >= 0; i-- {
		if blk, ok := stack[i].(*ast.BlockStmt); ok {
			innerBlock = blk
			if i+1 < len(stack) {
				stmtInBlock, _ = stack[i+1].(ast.Stmt)
			}
			break
		}
	}
	if innerBlock == nil || stmtInBlock == nil {
		return token.Pos(^uint(0) >> 1) // no block found: poison everything after
	}
	started := false
	for _, st := range innerBlock.List {
		if st == stmtInBlock {
			started = true
		}
		if !started {
			continue
		}
		switch s := st.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return innerBlock.End()
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return innerBlock.End()
				}
			}
		}
	}
	return token.Pos(^uint(0) >> 1)
}

// reportUseAfterPut flags the first use of the buffer inside a Put's
// poison range — the pool may already have re-issued the memory.
func reportUseAfterPut(pass *Pass, acq bufAcq, uses bufUses) {
	for _, put := range uses.puts {
		for _, use := range uses.plainUses {
			if use <= put.pos || use >= put.poisonEnd {
				continue
			}
			if reacquiredBetween(uses.reacqs, put.pos, use) {
				continue
			}
			pass.Reportf(use,
				"%s used after bufpool.Put (line %d); the pool may have re-issued this memory",
				acq.name, pass.Fset.Position(put.pos).Line)
			return
		}
	}
}

func reacquiredBetween(reacqs []token.Pos, after, before token.Pos) bool {
	for _, r := range reacqs {
		if r > after && r < before {
			return true
		}
	}
	return false
}

// collectBufReturns gathers this function's returns after the acquisition.
// Unlike connclose there is no error-guard exemption: Get cannot fail, so
// the buffer is live on every path.
func collectBufReturns(body *ast.BlockStmt, after token.Pos) []*ast.ReturnStmt {
	var rets []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok && ret.Pos() > after {
			rets = append(rets, ret)
		}
		return true
	})
	return rets
}
