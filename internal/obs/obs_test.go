package obs

import (
	"bytes"
	"context"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"
)

func traceBytes(t *testing.T, r *Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

// TestKeyedSiblingsOrderIsScheduleIndependent builds the same keyed
// fan-out twice — once in index order, once in reverse from separate
// goroutines — and demands byte-identical JSONL.
func TestKeyedSiblingsOrderIsScheduleIndependent(t *testing.T) {
	build := func(order []int) *Recorder {
		r := NewRecorder("study")
		parent := r.Root().Start("campaign:global")
		var wg sync.WaitGroup
		gate := make(chan struct{})
		for _, i := range order {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-gate
				sp := parent.Start("node", Key(i))
				sp.SetInt("idx", int64(i))
				sp.Charge(time.Duration(i+1) * time.Millisecond)
			}(i)
		}
		close(gate)
		wg.Wait()
		return r
	}
	fwd := make([]int, 16)
	rev := make([]int, 16)
	for i := range fwd {
		fwd[i] = i
		rev[i] = len(rev) - 1 - i
	}
	a := traceBytes(t, build(fwd))
	b := traceBytes(t, build(rev))
	if !bytes.Equal(a, b) {
		t.Fatalf("keyed sibling order depends on schedule:\n%s\nvs\n%s", a, b)
	}
	recs, err := ReadTrace(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	// 1 root + 1 campaign + 16 nodes, and node#k paths appear in key order.
	if len(recs) != 18 {
		t.Fatalf("got %d records, want 18", len(recs))
	}
	if recs[2].Path != "study/campaign:global/node" || recs[3].Path != "study/campaign:global/node#2" {
		t.Fatalf("unexpected sibling paths: %q, %q", recs[2].Path, recs[3].Path)
	}
	if recs[2].Attrs["idx"] != "0" || recs[17].Attrs["idx"] != "15" {
		t.Fatalf("keyed order broken: first idx=%s last idx=%s", recs[2].Attrs["idx"], recs[17].Attrs["idx"])
	}
}

func TestSerialSiblingsKeepCreationOrder(t *testing.T) {
	r := NewRecorder("root")
	p := r.Root()
	p.Start("b")
	p.Start("a")
	recs := r.Records()
	if recs[1].Path != "root/b" || recs[2].Path != "root/a" {
		t.Fatalf("serial order not creation order: %q, %q", recs[1].Path, recs[2].Path)
	}
}

func TestNilEverythingIsSafe(t *testing.T) {
	var r *Recorder
	var sp *Span
	var reg *Registry
	r.FlowEvent(netip.Addr{}, netip.Addr{}, "x")
	r.WatchFlow(netip.Addr{}, netip.Addr{}, nil)()
	if r.Root() != nil || r.Metrics() != nil || r.SpanCount() != 0 {
		t.Fatal("nil recorder leaked state")
	}
	sp.SetAttr("k", "v")
	sp.SetInt("k", 1)
	sp.Event("e")
	sp.Charge(time.Second)
	sp.Fail(nil)
	if sp.Start("child") != nil || sp.Virtual() != 0 || sp.Name() != "" {
		t.Fatal("nil span leaked state")
	}
	reg.Counter("c").Add(1)
	reg.VolatileCounter("vc").Add(1)
	reg.Gauge("g").Set(1)
	reg.VolatileGauge("vg").Max(1)
	reg.Histogram("h", nil).Observe(time.Second)
	if reg.Snapshot(true) != "" || reg.PrometheusText() != "" {
		t.Fatal("nil registry rendered output")
	}
	ctx := context.Background()
	ctx2, span := Start(ctx, "noop")
	if span != nil {
		t.Fatal("Start without recorder returned a span")
	}
	Charge(ctx2, time.Second)
	if FromContext(ctx2) != nil || Metrics(ctx2) != nil || CurrentSpan(ctx2) != nil {
		t.Fatal("context plumbing fabricated a recorder")
	}
}

func TestContextPlumbingAndWorkerSink(t *testing.T) {
	r := NewRecorder("study")
	reg := r.Metrics()
	total := reg.Counter("runner_virtual_busy_us_total", "pool", "p")
	worker := reg.VolatileCounter("runner_worker_virtual_busy_us", "pool", "p", "worker", "0")
	ctx := WithRecorder(context.Background(), r)
	ctx = WithWorkerSink(ctx, total, worker)
	ctx, sp := Start(ctx, "task")
	Charge(ctx, 3*time.Millisecond)
	if sp.Virtual() != 3*time.Millisecond {
		t.Fatalf("span virtual = %v", sp.Virtual())
	}
	if total.Value() != 3000 || worker.Value() != 3000 {
		t.Fatalf("sink totals = %d/%d, want 3000/3000", total.Value(), worker.Value())
	}
	if FromContext(ctx) != r || CurrentSpan(ctx) != sp {
		t.Fatal("context lookups broken")
	}
	if PoolName(ctx, "fb") != "fb" || PoolName(WithPool(ctx, "scan"), "fb") != "scan" {
		t.Fatal("pool name plumbing broken")
	}
}

func TestFlowEventsAnnotateWatchedSpan(t *testing.T) {
	r := NewRecorder("study")
	sp := r.Root().Start("lookup")
	from := netip.MustParseAddr("10.0.0.1")
	to := netip.MustParseAddr("1.1.1.1")
	release := r.WatchFlow(from, to, sp)
	r.FlowEvent(from, to, "fault:syn-drop")
	release()
	r.FlowEvent(from, to, "fault:reset") // after release: dropped
	recs := r.Records()
	if len(recs[1].Events) != 1 || recs[1].Events[0] != "fault:syn-drop" {
		t.Fatalf("events = %v", recs[1].Events)
	}
}

func TestSpanNameSanitization(t *testing.T) {
	r := NewRecorder("a/b")
	r.Root().Start("x/y\nz")
	recs := r.Records()
	if recs[0].Path != "a_b" || recs[1].Path != "a_b/x_y_z" {
		t.Fatalf("sanitization broken: %q, %q", recs[0].Path, recs[1].Path)
	}
}

func TestValidateRejectsMalformedTraces(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"path":"r","virt_us":0,"bogus":1}`,
		"empty":         ``,
		"orphan parent": "{\"path\":\"r\",\"virt_us\":0}\n{\"path\":\"r/a/b\",\"virt_us\":0}",
		"second root":   "{\"path\":\"r\",\"virt_us\":0}\n{\"path\":\"q\",\"virt_us\":0}",
		"negative virt": `{"path":"r","virt_us":-1}`,
		"dup path":      "{\"path\":\"r\",\"virt_us\":0}\n{\"path\":\"r/a\",\"virt_us\":0}\n{\"path\":\"r/a\",\"virt_us\":0}",
		"child first":   `{"path":"r/a","virt_us":0}`,
	}
	for name, in := range cases {
		if _, err := ReadTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadTrace accepted malformed trace", name)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	r := NewRecorder("study")
	sp := r.Root().Start("exp:table4", Attr("title", "reachability"))
	sp.Charge(1500 * time.Microsecond)
	sp.Event("note")
	child := sp.Start("lookup")
	child.Fail(context.DeadlineExceeded)
	raw := traceBytes(t, r)
	recs, err := ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[1].VirtUS != 1500 || recs[1].Attrs["title"] != "reachability" {
		t.Fatalf("record mismatch: %+v", recs[1])
	}
	if recs[2].Err == "" {
		t.Fatal("error not exported")
	}
	if r.SpanCount() != 2 {
		t.Fatalf("SpanCount = %d, want 2", r.SpanCount())
	}
}

// TestHistogramQuantilesHandComputed pins the interpolation against
// by-hand arithmetic: bounds {10,20,50}ms, observations
// 5, 15, 15, 40, 100 ms → buckets [1,2,1] + 1 overflow.
func TestHistogramQuantilesHandComputed(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	})
	for _, d := range []time.Duration{
		5 * time.Millisecond, 15 * time.Millisecond, 15 * time.Millisecond,
		40 * time.Millisecond, 100 * time.Millisecond,
	} {
		h.Observe(d)
	}
	if h.Count() != 5 || h.SumUS() != 175000 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.SumUS())
	}
	// p20: rank 1.0 lands exactly on bucket0's cumulative count → its
	// upper bound: 0 + (1-0)/1 × (10-0) = 10ms.
	if got := h.Quantile(0.20); got != 10*time.Millisecond {
		t.Errorf("p20 = %v, want 10ms", got)
	}
	// p50: rank 2.5; bucket1 spans cumulative (1,3]: 10 + (2.5-1)/2 × 10 = 17.5ms.
	if got := h.Quantile(0.50); got != 17500*time.Microsecond {
		t.Errorf("p50 = %v, want 17.5ms", got)
	}
	// p70: rank 3.5; bucket2 spans (3,4]: 20 + (3.5-3)/1 × 30 = 35ms.
	if got := h.Quantile(0.70); got != 35*time.Millisecond {
		t.Errorf("p70 = %v, want 35ms", got)
	}
	// p90: rank 4.5 falls in the +Inf overflow → clamps to the 50ms top bound.
	if got := h.Quantile(0.90); got != 50*time.Millisecond {
		t.Errorf("p90 = %v, want 50ms (clamped)", got)
	}
	var empty *Histogram
	if empty.Quantile(0.5) != 0 || NewRegistry().Histogram("e", nil).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
}

func TestSnapshotFiltersVolatileAndSortsDeterministically(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zeta_total", "proto", "dot").Add(2)
	reg.Counter("alpha_total").Add(1)
	reg.VolatileGauge("runner_workers", "pool", "scan").Set(8)
	reg.Histogram("lat", []time.Duration{10 * time.Millisecond}, "proto", "doh").Observe(4 * time.Millisecond)

	det := reg.Snapshot(false)
	if strings.Contains(det, "runner_workers") {
		t.Fatalf("volatile metric leaked into deterministic snapshot:\n%s", det)
	}
	want := "alpha_total 1\nlat{proto=doh} count=1 sum_us=4000 p50=5000us p90=9000us p99=9900us\nzeta_total{proto=dot} 2\n"
	if det != want {
		t.Fatalf("deterministic snapshot:\n%q\nwant:\n%q", det, want)
	}
	full := reg.Snapshot(true)
	if !strings.Contains(full, "runner_workers{pool=scan} 8") {
		t.Fatalf("full snapshot missing volatile metric:\n%s", full)
	}
}

func TestPrometheusText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("queries_total", "proto", "dot", "outcome", "ok").Add(7)
	reg.Histogram("lat", []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}).Observe(15 * time.Millisecond)
	out := reg.PrometheusText()
	for _, want := range []string{
		"# TYPE doe_queries_total counter",
		`doe_queries_total{proto="dot",outcome="ok"} 7`,
		`doe_lat_bucket{le="0.01"} 0`,
		`doe_lat_bucket{le="0.02"} 1`,
		`doe_lat_bucket{le="+Inf"} 1`,
		"doe_lat_sum 0.015",
		"doe_lat_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderTree(t *testing.T) {
	r := NewRecorder("study")
	sp := r.Root().Start("exp:table4")
	sp.Charge(2 * time.Millisecond)
	look := sp.Start("lookup", Attr("outcome", "correct"))
	look.Event("fault:stall")
	recs := r.Records()
	out := RenderTree(recs)
	want := "study\n  exp:table4 [2.000ms]\n    lookup {outcome=correct}\n      * fault:stall\n"
	if out != want {
		t.Fatalf("RenderTree:\n%q\nwant:\n%q", out, want)
	}
}

func TestGaugeMaxAndRegistryReuse(t *testing.T) {
	reg := NewRegistry()
	g := reg.VolatileGauge("depth")
	g.Max(3)
	g.Max(1)
	if g.Value() != 3 {
		t.Fatalf("Max = %d", g.Value())
	}
	if reg.Counter("c", "a", "1") != reg.Counter("c", "a", "1") {
		t.Fatal("counter instances not reused")
	}
	if reg.Counter("c", "a", "1") == reg.Counter("c", "a", "2") {
		t.Fatal("distinct labels shared an instance")
	}
}
