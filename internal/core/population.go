package core

import (
	"fmt"
	"net/netip"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/scanner"
)

// scanSpaceAddr returns the i-th address of the swept space.
func (s *Study) scanSpaceAddr(i int) netip.Addr {
	b := scanSpaceBase.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	v += uint32(i)
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// providerDeck builds the provider assignment deck for all resolver slots:
// one providerSpec per address, calibrated to Finding 1.2 (≈25% of
// providers with invalid certificates; 47 FortiGate middleboxes among the
// self-signed population) and Fig. 4 (≈70% single-address providers, large
// providers owning >75% of addresses).
func providerDeck(total int, rnd func(int) int) []providerSpec {
	var deck []providerSpec

	// Invalid-certificate population (counts ≈ paper/ResolverScale).
	for i := 0; i < 8; i++ { // FortiGate TLS-inspection middleboxes
		deck = append(deck, providerSpec{cn: fmt.Sprintf("%s-%04d", certs.FortiGateDefaultCN, i), kind: certFortiGate})
	}
	expired := []struct {
		cn string
		n  int
	}{{"expired-one.example", 3}, {"expired-two.example", 2}, {"expired-old.example", 2}}
	for _, e := range expired {
		for i := 0; i < e.n; i++ {
			deck = append(deck, providerSpec{cn: e.cn, kind: certExpired})
		}
	}
	deck = append(deck,
		providerSpec{cn: "Perfect Privacy", kind: certSelfSigned},
		providerSpec{cn: "Perfect Privacy", kind: certSelfSigned},
		providerSpec{cn: "qq.dog", kind: certSelfSigned},
		providerSpec{cn: "homelab-dns.example", kind: certSelfSigned},
	)
	badchain := []struct {
		cn string
		n  int
	}{{"chainless.example", 4}, {"missing-intermediate.example", 3}}
	for _, b := range badchain {
		for i := 0; i < b.n; i++ {
			deck = append(deck, providerSpec{cn: b.cn, kind: certBadChain})
		}
	}

	// Small valid single-address providers (the Fig. 4 long tail).
	for i := 0; i < 36; i++ {
		deck = append(deck, providerSpec{cn: fmt.Sprintf("dns.small-%02d.example", i), kind: certValid})
	}

	// Large providers absorb the remainder, weighted.
	large := []struct {
		cn     string
		weight int
	}{
		{"cloudflare-dns.com", 22},
		{"cleanbrowsing.org", 18},
		{"dns.quad9.net", 9},
		{"dot.dns-foundation.example", 8},
		{"securedns.eu", 7},
		{"tenta.io", 6},
		{"blahdns.com", 5},
	}
	totalWeight := 0
	for _, l := range large {
		totalWeight += l.weight
	}
	remainder := total - len(deck)
	for _, l := range large {
		n := remainder * l.weight / totalWeight
		for i := 0; i < n; i++ {
			deck = append(deck, providerSpec{cn: l.cn, kind: certValid})
		}
	}
	for len(deck) < total { // rounding remainder
		deck = append(deck, providerSpec{cn: large[0].cn, kind: certValid})
	}
	deck = deck[:total]

	// Deterministic shuffle so providers spread across countries.
	for i := len(deck) - 1; i > 0; i-- {
		j := rnd(i + 1)
		deck[i], deck[j] = deck[j], deck[i]
	}
	return deck
}

// issueSlotLeaf creates the certificate for one resolver slot.
func (s *Study) issueSlotLeaf(spec providerSpec, addr netip.Addr) (*certs.Leaf, error) {
	opts := certs.LeafOptions{CommonName: spec.cn, IPs: []netip.Addr{addr}}
	switch spec.kind {
	case certExpired:
		// Some certificates lapsed in 2018 ("185.56.24.52, expired Jul
		// 2018"), others more recently.
		ago := time.Duration(30+s.randIntn(270)) * 24 * time.Hour
		return s.RootCA.IssueExpired(opts, ago)
	case certSelfSigned, certFortiGate:
		return certs.SelfSigned(opts)
	case certBadChain:
		return s.RootCA.IssueBrokenChain(opts)
	default:
		return s.RootCA.Issue(opts)
	}
}

// buildScanPopulation creates the DoT resolver slots per Table 2's
// per-country counts (scaled by ResolverScale), their churn across scan
// rounds, and the port-853-open-but-not-DoT background population.
func (s *Study) buildScanPopulation() error {
	spaceSize := 1 << s.ScanSpaceBits
	rounds := s.ScanRounds
	if rounds < 2 {
		rounds = 2
	}

	// Reserve the low space for background hosts, the high for resolvers.
	nextAddr := s.PortOpenNotDoT + 100

	type slotPlan struct {
		country    string
		activeFrom int
		activeTo   int
	}
	var plans []slotPlan
	for _, cp := range resolverCountryPlan {
		feb := (cp.Feb + ResolverScale - 1) / ResolverScale
		may := (cp.May + ResolverScale - 1) / ResolverScale
		n := feb
		if may > n {
			n = may
		}
		countAt := func(r int) int {
			return feb + (may-feb)*r/(rounds-1)
		}
		for j := 0; j < n; j++ {
			// Slot j is active in rounds where countAt(round) > j.
			from, to := -1, -1
			for r := 0; r < rounds; r++ {
				if countAt(r) > j {
					if from < 0 {
						from = r
					}
					to = r
				}
			}
			if from < 0 {
				continue
			}
			plans = append(plans, slotPlan{country: cp.CC, activeFrom: from, activeTo: to})
		}
	}

	deck := providerDeck(len(plans), s.randIntn)
	for i, plan := range plans {
		addr := s.scanSpaceAddr(nextAddr)
		nextAddr += 1 + s.randIntn(3)
		if nextAddr >= spaceSize {
			return fmt.Errorf("core: scan space of 2^%d too small for resolver population", s.ScanSpaceBits)
		}
		spec := deck[i]
		leaf, err := s.issueSlotLeaf(spec, addr)
		if err != nil {
			return err
		}
		s.World.Geo.Register(netip.PrefixFrom(addr, 32),
			geo.Location{Country: plan.country, ASN: 65000 + i%997, ASName: "Hosting " + plan.country})
		s.slots = append(s.slots, &resolverSlot{
			addr:       addr,
			country:    plan.country,
			provider:   spec,
			leaf:       leaf,
			activeFrom: plan.activeFrom,
			activeTo:   plan.activeTo,
		})
	}

	// Background: hosts with TCP/853 open that are not DoT resolvers
	// (TLS-but-not-DNS services and raw TCP services).
	notDNSLeaf, err := s.RootCA.Issue(certs.LeafOptions{CommonName: "mail.not-dns.example"})
	if err != nil {
		return err
	}
	for i := 0; i < s.PortOpenNotDoT; i++ {
		addr := s.scanSpaceAddr(10 + i)
		if i%2 == 0 {
			dot.ServeNotDNS(s.World, addr, notDNSLeaf)
		} else {
			dot.ServeNotDNS(s.World, addr, nil)
		}
	}

	// A handful of dnsfilter-style resolvers: respond to anyone but with
	// a fixed address (answer validation catches them, §3.2).
	fixed := netip.MustParseAddr("146.112.61.106")
	for i := 0; i < 3; i++ {
		addr := s.scanSpaceAddr(nextAddr)
		nextAddr += 2
		leaf, err := s.RootCA.Issue(certs.LeafOptions{CommonName: "dnsfilter.example", IPs: []netip.Addr{addr}})
		if err != nil {
			return err
		}
		s.World.Geo.Register(netip.PrefixFrom(addr, 32), geo.Location{Country: "US", ASN: 64496, ASName: "DNSFilter"})
		dot.Serve(s.World, addr, leaf, dnsserver.Static{Addr: fixed, Proc: time.Millisecond}, 0)
	}
	return nil
}

// SetScanRound activates/deactivates resolver slots for round r, modeling
// the churn §3.2 observes between Feb 1 and May 1 (Irish and US resolvers
// multiplying, a Chinese cloud platform shutting down).
func (s *Study) SetScanRound(r int) {
	s.curRound = r
	for _, slot := range s.slots {
		shouldRun := r >= slot.activeFrom && r <= slot.activeTo
		switch {
		case shouldRun && !slot.registered:
			zone := s.Zone
			dot.Serve(s.World, slot.addr, slot.leaf, zone, time.Millisecond)
			slot.registered = true
		case !shouldRun && slot.registered:
			s.World.CloseService(slot.addr, dot.Port)
			slot.registered = false
		}
	}
}

// ActiveResolverCount reports the ground-truth DoT population at round r.
func (s *Study) ActiveResolverCount(r int) int {
	n := 0
	for _, slot := range s.slots {
		if r >= slot.activeFrom && r <= slot.activeTo {
			n++
		}
	}
	return n
}

// buildScanner wires the §3 scanner against the population.
func (s *Study) buildScanner() {
	labels := make([]string, s.ScanRounds)
	start := time.Date(2019, 2, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2019, 5, 1, 0, 0, 0, 0, time.UTC)
	span := int(end.Sub(start).Hours() / 24)
	for i := range labels {
		off := span * i / max(1, s.ScanRounds-1)
		labels[i] = start.AddDate(0, 0, off).Format("2006-01-02")
	}
	s.ScanLabels = labels
	s.Scanner = &scanner.Scanner{
		World:       s.World,
		Sources:     scanSources,
		Space:       scanner.Space{Base: scanSpaceBase, Size: uint64(1) << s.ScanSpaceBits},
		OptOut:      &netsim.OptOutList{},
		ProbeDomain: "scanprobe." + ProbeZone,
		ExpectedA:   s.ExpectedA,
		Roots:       s.Roots,
		Workers:     s.Workers,
		Seed:        uint64(s.Seed),
	}
}

// RunScans executes every scan round, applying churn between rounds.
func (s *Study) RunScans() ([]*scanner.Result, error) {
	results := make([]*scanner.Result, 0, s.ScanRounds)
	ctx := s.obsCtx()
	for r := 0; r < s.ScanRounds; r++ {
		s.SetScanRound(r)
		res, err := s.Scanner.ScanContext(ctx, s.ScanLabels[r])
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}
