// Package scandetect reproduces the §5.2 scanner screening: before trusting
// observed DoT traffic as organic, the paper submits client networks to a
// scan-detection system (NetworkScan Mon) that classifies sources by their
// flow behaviour, and additionally checks SOA/PTR records of client
// addresses for research-scanner fingerprints.
package scandetect

import (
	"net/netip"
	"sort"
	"strings"

	"dnsencryption.info/doe/internal/netflow"
)

// Verdict is the classification of one traffic source.
type Verdict struct {
	Source netip.Addr
	// Scanner is true when the source's behaviour matches scanning.
	Scanner bool
	// Reason explains the classification.
	Reason string
	// DistinctDsts is the number of distinct destinations on the port.
	DistinctDsts int
	// SYNOnlyFraction is the share of flows that were bare SYNs.
	SYNOnlyFraction float64
}

// Detector implements a state-transition-style classifier over per-source
// flow statistics, tuned for port-853 scanning.
type Detector struct {
	// Port restricts analysis (853 for DoT scan screening).
	Port uint16
	// FanoutThreshold is the distinct-destination count above which a
	// source is considered scanning.
	FanoutThreshold int
	// SYNOnlyThreshold is the bare-SYN fraction above which fanout is
	// treated as scanning even below the hard threshold.
	SYNOnlyThreshold float64
	// ReverseNames supplies PTR/SOA names for an address, for the
	// fingerprint check ("we also check the SOA and PTR records of the
	// client addresses").
	ReverseNames func(netip.Addr) []string
}

// NewDetector returns a detector with defaults suiting the study.
func NewDetector(port uint16) *Detector {
	return &Detector{
		Port:             port,
		FanoutThreshold:  100,
		SYNOnlyThreshold: 0.8,
	}
}

// scannerNameMarkers are PTR/SOA substrings that research scanners
// typically publish (the paper's own scanner sets such a record for
// opt-out).
var scannerNameMarkers = []string{"scan", "research", "probe", "measurement", "survey"}

// Classify analyses all records and returns a verdict per source address,
// sorted by source.
func (d *Detector) Classify(records []netflow.Record) []Verdict {
	type stats struct {
		dsts    map[netip.Addr]bool
		flows   int
		synOnly int
	}
	bySrc := map[netip.Addr]*stats{}
	for _, rec := range records {
		if rec.DstPort != d.Port || rec.Proto != netflow.ProtoTCP {
			continue
		}
		s, ok := bySrc[rec.Src]
		if !ok {
			s = &stats{dsts: map[netip.Addr]bool{}}
			bySrc[rec.Src] = s
		}
		s.dsts[rec.Dst] = true
		s.flows++
		if rec.Flags == netflow.FlagSYN {
			s.synOnly++
		}
	}
	out := make([]Verdict, 0, len(bySrc))
	for src, s := range bySrc {
		v := Verdict{
			Source:       src,
			DistinctDsts: len(s.dsts),
		}
		if s.flows > 0 {
			v.SYNOnlyFraction = float64(s.synOnly) / float64(s.flows)
		}
		switch {
		case len(s.dsts) >= d.FanoutThreshold:
			v.Scanner = true
			v.Reason = "high destination fanout"
		case len(s.dsts) >= d.FanoutThreshold/10 && v.SYNOnlyFraction >= d.SYNOnlyThreshold:
			v.Scanner = true
			v.Reason = "moderate fanout with SYN-only flows"
		case d.nameMatches(src):
			v.Scanner = true
			v.Reason = "scanner fingerprint in PTR/SOA"
		default:
			v.Reason = "organic"
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source.Less(out[j].Source) })
	return out
}

func (d *Detector) nameMatches(src netip.Addr) bool {
	if d.ReverseNames == nil {
		return false
	}
	for _, name := range d.ReverseNames(src) {
		lower := strings.ToLower(name)
		for _, marker := range scannerNameMarkers {
			if strings.Contains(lower, marker) {
				return true
			}
		}
	}
	return false
}

// FilterOrganic removes flows whose source was classified as a scanner.
func FilterOrganic(records []netflow.Record, verdicts []Verdict) []netflow.Record {
	scanners := map[netip.Addr]bool{}
	for _, v := range verdicts {
		if v.Scanner {
			scanners[v.Source] = true
		}
	}
	var out []netflow.Record
	for _, rec := range records {
		if !scanners[rec.Src] {
			out = append(out, rec)
		}
	}
	return out
}
