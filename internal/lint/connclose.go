package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// analyzerConnclose flags acquired connections (or any io.Closer obtained
// from a Dial/Listen/Accept/Open-style call) that can leak: either no
// Close/ownership transfer exists at all, or a return path is reachable
// before any Close with no deferred Close pending. Ownership transfer —
// passing the value to another call, storing it in a struct or variable,
// returning it, or sending it on a channel — discharges the obligation,
// as does a return guarded by the acquisition's own error (the value is
// not live on that path). The check is lexical, not flow-sensitive: a
// Close in an earlier branch satisfies a later return. That approximation
// errs quiet, and the deliberate exceptions carry //doelint:allow.
var analyzerConnclose = &Analyzer{
	Name: "connclose",
	Doc:  "conns acquired via Dial/Listen/Accept/Open must be closed on every return path",
	Run:  runConnclose,
}

// acquirePattern matches function or method names whose result the caller
// owns and must close.
var acquirePattern = regexp.MustCompile(`^(Dial|Listen|Accept|Open)`)

func runConnclose(pass *Pass) {
	closer := newCloserInterface()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkConnFunc(pass, fn.Body, closer)
				}
			case *ast.FuncLit:
				checkConnFunc(pass, fn.Body, closer)
			}
			return true
		})
	}
}

// newCloserInterface builds interface{ Close() error } without importing io,
// so the check works on any package regardless of its import graph.
func newCloserInterface() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	results := types.NewTuple(types.NewVar(token.NoPos, nil, "", errType))
	sig := types.NewSignatureType(nil, nil, nil, nil, results, false)
	closeFn := types.NewFunc(token.NoPos, nil, "Close", sig)
	iface := types.NewInterfaceType([]*types.Func{closeFn}, nil)
	iface.Complete()
	return iface
}

func implementsCloser(t types.Type, closer *types.Interface) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, closer) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), closer)
	}
	return false
}

// acquisition is one "v, err := Dial(...)"-style statement in a function.
type acquisition struct {
	obj    types.Object // the closeable value
	errObj types.Object // the error assigned alongside it, if any
	pos    token.Pos
	name   string // source name, for messages
	callee string // acquiring function name, for messages
}

func checkConnFunc(pass *Pass, body *ast.BlockStmt, closer *types.Interface) {
	acqs := findAcquisitions(pass, body, closer)
	for _, acq := range acqs {
		uses := collectUses(pass, body, acq.obj)
		if len(uses.closes) == 0 && len(uses.deferCloses) == 0 && len(uses.escapes) == 0 {
			pass.Reportf(acq.pos,
				"%s acquired from %s is never closed in this function (no Close, no ownership transfer)",
				acq.name, acq.callee)
			continue
		}
		if len(uses.deferCloses) > 0 {
			continue
		}
		// No deferred Close: every return reachable after the acquisition
		// must be preceded by a Close or an ownership transfer, except
		// returns guarded by the acquisition's own error. An escape within
		// the return statement itself ("return wrap(conn)") counts, hence
		// the comparison against the statement's End.
		for _, ret := range collectReturns(pass, body, acq) {
			if !anyBefore(uses.closes, ret.End()) && !anyBefore(uses.escapes, ret.End()) {
				pass.Reportf(ret.Pos(),
					"return without closing %s (acquired from %s at line %d) and no deferred Close pending",
					acq.name, acq.callee, pass.Fset.Position(acq.pos).Line)
				break // one report per acquisition keeps the signal readable
			}
		}
	}
}

// findAcquisitions scans the statements of this function — not of nested
// function literals, which are analyzed as their own functions — for
// assignments from acquiring calls whose result implements io.Closer.
func findAcquisitions(pass *Pass, body *ast.BlockStmt, closer *types.Interface) []acquisition {
	var acqs []acquisition
	inspectSkippingFuncLits(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		callee := calleeName(call)
		if !acquirePattern.MatchString(callee) {
			return
		}
		var closeables []acquisition
		var errObj types.Object
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.objectOf(id)
			if obj == nil {
				continue
			}
			if types.AssignableTo(obj.Type(), types.Universe.Lookup("error").Type()) {
				errObj = obj
				continue
			}
			if implementsCloser(obj.Type(), closer) {
				closeables = append(closeables, acquisition{
					obj: obj, pos: id.Pos(), name: id.Name, callee: callee,
				})
			}
		}
		for i := range closeables {
			closeables[i].errObj = errObj
			acqs = append(acqs, closeables[i])
		}
	})
	return acqs
}

// calleeName extracts the final name of a call's function expression.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// connUses partitions the uses of an acquired object within a function
// body (nested function literals included, since deferred closures and
// goroutines act on the outer function's values).
type connUses struct {
	closes      []token.Pos // v.Close() executed inline
	deferCloses []token.Pos // v.Close() under a defer (directly or in a closure)
	escapes     []token.Pos // ownership transfers: call argument, return, store, send
}

func collectUses(pass *Pass, body *ast.BlockStmt, obj types.Object) connUses {
	var uses connUses
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != obj {
			return true
		}
		// Capture inside a go-launched closure transfers ownership: the
		// goroutine's lifetime, not this function's, bounds the value
		// (e.g. an accept loop running on a stored listener).
		if goroutineCapture(stack) {
			uses.escapes = append(uses.escapes, id.Pos())
			return true
		}
		// Method/field access on the object: v.Close() is the discharge
		// we are looking for; any other method call or field read keeps
		// ownership here.
		if sel, ok := parentAt(stack, 1).(*ast.SelectorExpr); ok && sel.X == id {
			call, isCall := parentAt(stack, 2).(*ast.CallExpr)
			if isCall && call.Fun == sel {
				if sel.Sel.Name == "Close" {
					if underDefer(stack) {
						uses.deferCloses = append(uses.deferCloses, id.Pos())
					} else {
						uses.closes = append(uses.closes, id.Pos())
					}
				}
				return true
			}
			// Method value (v.Close passed around) or field read: treat a
			// bare selector used elsewhere as neutral.
			return true
		}
		if escapesAt(stack, id) {
			uses.escapes = append(uses.escapes, id.Pos())
		}
		return true
	})
	return uses
}

// parentAt returns the ancestor `up` levels above the node on top of the
// stack (up=1 is the direct parent).
func parentAt(stack []ast.Node, up int) ast.Node {
	idx := len(stack) - 1 - up
	if idx < 0 {
		return nil
	}
	return stack[idx]
}

// underDefer reports whether the top of the stack sits under a defer
// statement, including via an immediately-deferred closure.
func underDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// goroutineCapture reports whether the node on top of the stack sits
// inside a function literal that is launched with `go`.
func goroutineCapture(stack []ast.Node) bool {
	sawFuncLit := false
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit:
			sawFuncLit = true
		case *ast.GoStmt:
			if sawFuncLit {
				return true
			}
		}
	}
	return false
}

// escapesAt decides whether a bare identifier use transfers ownership.
// Walking outward from the identifier to its enclosing statement: being an
// argument of a call or composite literal, part of a return, the source of
// an assignment, or a channel send all transfer ownership.
func escapesAt(stack []ast.Node, id *ast.Ident) bool {
	var child ast.Node = id
	for i := len(stack) - 2; i >= 0; i-- {
		switch anc := stack[i].(type) {
		case *ast.CallExpr:
			if anc.Fun != child {
				return true // argument position
			}
		case *ast.CompositeLit, *ast.KeyValueExpr:
			return true
		case *ast.ReturnStmt, *ast.GoStmt, *ast.SendStmt:
			return true
		case *ast.AssignStmt:
			for _, rhs := range anc.Rhs {
				if rhs == child {
					return true
				}
			}
			return false // write into the variable, not a transfer
		case ast.Stmt:
			return false
		}
		child = stack[i]
	}
	return false
}

// collectReturns gathers return statements of this function (skipping
// nested function literals) that appear after the acquisition and are not
// guarded by the acquisition's own error check.
func collectReturns(pass *Pass, body *ast.BlockStmt, acq acquisition) []*ast.ReturnStmt {
	var rets []*ast.ReturnStmt
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // not pushed: Inspect sends no nil for pruned subtrees
		}
		stack = append(stack, n)
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() < acq.pos {
			return true
		}
		if acq.errObj != nil && guardedByError(pass, stack, acq.errObj) {
			return true
		}
		rets = append(rets, ret)
		return true
	})
	return rets
}

// guardedByError reports whether some enclosing if-statement's condition
// mentions errObj — the `if err != nil { return ... }` idiom right after a
// failed acquisition, where the conn is not live.
func guardedByError(pass *Pass, stack []ast.Node, errObj types.Object) bool {
	for _, n := range stack {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		mentions := false
		ast.Inspect(ifStmt.Cond, func(c ast.Node) bool {
			if id, ok := c.(*ast.Ident); ok && pass.Info.Uses[id] == errObj {
				mentions = true
			}
			return !mentions
		})
		if mentions {
			return true
		}
	}
	return false
}

func anyBefore(positions []token.Pos, limit token.Pos) bool {
	for _, p := range positions {
		if p < limit {
			return true
		}
	}
	return false
}

// inspectSkippingFuncLits walks a subtree without descending into nested
// function literals.
func inspectSkippingFuncLits(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
