package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// analyzerErrwrap flags fmt.Errorf calls that interpolate an error value
// without the %w verb. Unwrapped errors break errors.Is/errors.As for
// callers — a scanner that cannot distinguish a timeout from a TLS
// authentication failure misclassifies resolvers. The check counts
// error-typed arguments against %w verbs in the format string, so
// "%w: %v" with two error arguments is still a finding.
var analyzerErrwrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error argument must wrap it with %w",
	Run:  runErrwrap,
}

func runErrwrap(pass *Pass) {
	errType := types.Universe.Lookup("error").Type()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			if !isPkgFunc(pass, call, "fmt", "Errorf") {
				return true
			}
			format, ok := stringLiteral(call.Args[0])
			if !ok {
				return true
			}
			wVerbs := countWVerbs(format)
			errArgs := 0
			var firstErrArg ast.Expr
			for _, arg := range call.Args[1:] {
				t := pass.Info.TypeOf(arg)
				if t == nil {
					continue
				}
				if b, isBasic := t.(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
					continue
				}
				if types.AssignableTo(t, errType) {
					errArgs++
					if firstErrArg == nil {
						firstErrArg = arg
					}
				}
			}
			if errArgs > wVerbs {
				pass.Reportf(firstErrArg.Pos(),
					"fmt.Errorf passes %d error value(s) but the format has %d %%w verb(s); wrap with %%w so callers can errors.Is/errors.As",
					errArgs, wVerbs)
			}
			return true
		})
	}
}

// isPkgFunc reports whether call invokes pkgPath.funcName through a plain
// package selector (aliased imports included, method values excluded).
func isPkgFunc(pass *Pass, call *ast.CallExpr, pkgPath, funcName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != funcName {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == pkgPath
}

// stringLiteral extracts a constant string from an expression, following
// "+" concatenation of literals.
func stringLiteral(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		s, err := strconv.Unquote(e.Value)
		return s, err == nil
	case *ast.BinaryExpr:
		left, okL := stringLiteral(e.X)
		right, okR := stringLiteral(e.Y)
		return left + right, okL && okR
	case *ast.ParenExpr:
		return stringLiteral(e.X)
	}
	return "", false
}

// countWVerbs counts %w verbs in a fmt format string.
func countWVerbs(format string) int {
	n := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.ContainsRune("#+-0 .*[]0123456789", rune(format[i])) {
			i++
		}
		if i < len(format) && format[i] == 'w' {
			n++
		}
	}
	return n
}
