// Faultinjection: build a small simulated Internet, make its network lossy
// with a deterministic, seeded fault injector, and watch the resolver's
// retry/backoff layer carry measurements through anyway. The same seed
// always produces the same faults, so "flaky network" runs are exactly
// reproducible — the property the chaos suite builds on.
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/faults"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/resolver"
)

func main() {
	// 1. A world with one client and one DoT resolver.
	world := netsim.NewWorld(42)
	client := netip.MustParseAddr("10.0.0.1")
	server := netip.MustParseAddr("192.0.2.53")

	zone := dnsserver.NewZone("example.test")
	zone.WildcardA = netip.MustParseAddr("203.0.113.10")

	ca, err := certs.NewCA("Faultinjection Root", true)
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := ca.Issue(certs.LeafOptions{CommonName: "dns.example.test", IPs: []netip.Addr{server}})
	if err != nil {
		log.Fatal(err)
	}
	dot.Serve(world, server, leaf, zone, time.Millisecond)

	// 2. A fault injector: the first two dials on every (src, dst, port)
	// tuple are refused, then the path heals — the shape of a flaky anycast
	// backend. Faults are a pure function of (seed, tuple, attempt), so
	// seed 7 produces this exact schedule every run.
	inj := faults.New(7, nil)
	inj.Default = faults.Flaky(2)
	world.SetFaults(inj)

	ctx := context.Background()
	query := func() *dnswire.Message {
		return dnswire.NewQuery(0, "www.example.test", dnswire.TypeA)
	}

	// 3. Without retries the first lookup just fails — and burns the first
	// of the tuple's two flaky dials.
	bare := resolver.New(world, client, certs.Pool(ca)).DoT(server)
	if _, err := bare.Exchange(ctx, query()); err != nil {
		fmt.Printf("no retry:    first DoT lookup fails: %v\n", err)
	}
	bare.Close()

	// 4. With a retry budget the remaining failure is invisible to the
	// caller: attempt 1 hits the tuple's second flaky dial, attempt 2
	// lands. The 25 ms backoff is charged to the virtual clock, never
	// slept.
	tr := resolver.New(world, client, certs.Pool(ca),
		resolver.WithRetry(resolver.RetryPolicy{Attempts: 3, Backoff: 25 * time.Millisecond}),
	).DoT(server)
	defer tr.Close()

	m, err := tr.Exchange(ctx, query())
	if err != nil {
		log.Fatalf("retrying lookup: %v", err)
	}
	addr, _ := m.FirstA()
	fmt.Printf("with retry:  answer=%v  latency=%v (includes 25 ms virtual backoff)\n",
		addr, tr.LastLatency())

	// 5. The path healed, so later lookups are single-attempt.
	if _, err := tr.Exchange(ctx, query()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healed path: latency=%v\n", tr.LastLatency())

	// 6. Both layers kept books. The injector counted what it broke; the
	// transport counted what it took to recover.
	st := inj.Stats()
	fmt.Printf("injector:    %d stream dials seen, %d failed flaky\n", st.StreamDials, st.FlakyFailures)
	fmt.Printf("transport:   %+v\n", tr.Stats())
}
