package dnsserver

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dnsencryption.info/doe/internal/dnswire"
)

// LoadZone parses a zone file into a Zone. Supported syntax: one record per
// line ("name [ttl] [IN] TYPE rdata"), "$ORIGIN" and "$TTL" directives,
// ";"-comments, "@" for the origin, relative names, and blank-name lines
// inheriting the previous owner. origin seeds $ORIGIN and the zone apex.
func LoadZone(origin string, r io.Reader) (*Zone, error) {
	zone := NewZone(origin)
	curOrigin := dnswire.CanonicalName(origin)
	var defaultTTL uint32 = 3600
	lastOwner := ""

	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 && !insideQuotes(line, i) {
			line = line[:i]
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		switch {
		case strings.HasPrefix(trimmed, "$ORIGIN"):
			fields := strings.Fields(trimmed)
			if len(fields) != 2 {
				return nil, fmt.Errorf("dnsserver: line %d: bad $ORIGIN", lineNo)
			}
			curOrigin = dnswire.CanonicalName(fields[1])
			continue
		case strings.HasPrefix(trimmed, "$TTL"):
			fields := strings.Fields(trimmed)
			if len(fields) != 2 {
				return nil, fmt.Errorf("dnsserver: line %d: bad $TTL", lineNo)
			}
			n, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dnsserver: line %d: bad $TTL value: %w", lineNo, err)
			}
			defaultTTL = uint32(n)
			continue
		}
		// Owner inheritance: a line starting with whitespace reuses the
		// previous owner name.
		if (line[0] == ' ' || line[0] == '\t') && lastOwner != "" {
			trimmed = lastOwner + " " + trimmed
		}
		rec, err := dnswire.ParseRecord(trimmed, curOrigin, defaultTTL)
		if err != nil {
			return nil, fmt.Errorf("dnsserver: line %d: %w", lineNo, err)
		}
		lastOwner = rec.Name
		if !dnswire.IsSubdomain(rec.Name, zone.Origin) {
			return nil, fmt.Errorf("dnsserver: line %d: %q outside zone %q", lineNo, rec.Name, zone.Origin)
		}
		zone.Add(rec.Name, rec.TTL, rec.Data)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return zone, nil
}

// insideQuotes reports whether position i of line falls inside a quoted
// string (so a ';' there is content, not a comment).
func insideQuotes(line string, i int) bool {
	quotes := 0
	for j := 0; j < i; j++ {
		if line[j] == '"' {
			quotes++
		}
	}
	return quotes%2 == 1
}
