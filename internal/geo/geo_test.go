package geo

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestCountryByCode(t *testing.T) {
	c, ok := CountryByCode("CN")
	if !ok || c.Name != "China" {
		t.Fatalf("CountryByCode(CN) = %+v, %v", c, ok)
	}
	if _, ok := CountryByCode("XX"); ok {
		t.Error("CountryByCode accepted unknown code")
	}
}

func TestPaperCountriesPresent(t *testing.T) {
	// Every country named in the paper's tables must exist in the model.
	for _, cc := range []string{
		"IE", "CN", "US", "DE", "FR", "JP", "NL", "GB", "BR", "RU", // Table 2
		"ID", "VN", "IN", // footnote 4, Fig 9
		"LA", "MY", "IT", "KR", // Tables 5-6
		"AU", "HK", // Table 7
	} {
		if _, ok := CountryByCode(cc); !ok {
			t.Errorf("country %s missing from model", cc)
		}
	}
}

func TestRTTSymmetric(t *testing.T) {
	m := NewRTTModel()
	f := func(i, j uint8) bool {
		codes := CountryCodes()
		a := codes[int(i)%len(codes)]
		b := codes[int(j)%len(codes)]
		return m.RTTMillis(a, b) == m.RTTMillis(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRTTPositiveAndDomesticSmaller(t *testing.T) {
	m := NewRTTModel()
	for _, cc := range CountryCodes() {
		dom := m.RTTMillis(cc, cc)
		if dom <= 0 {
			t.Errorf("domestic RTT for %s = %v", cc, dom)
		}
		far := m.RTTMillis(cc, "AU")
		if cc != "AU" && far <= dom {
			t.Errorf("%s->AU RTT %v not greater than domestic %v", cc, far, dom)
		}
	}
}

func TestRTTUnknownCountryDefault(t *testing.T) {
	m := NewRTTModel()
	if got := m.RTTMillis("XX", "US"); got != 150 {
		t.Errorf("unknown-country RTT = %v, want 150", got)
	}
}

func TestRTTModelExtraCountry(t *testing.T) {
	m := NewRTTModel(Country{Code: "QQ", Name: "Test", X: 10, Y: 40, LastMileMS: 5})
	if got := m.RTTMillis("QQ", "QQ"); got != 10 {
		t.Errorf("extra-country domestic RTT = %v, want 10", got)
	}
}

func TestRegistryLongestPrefixWins(t *testing.T) {
	var r Registry
	r.Register(netip.MustParsePrefix("10.0.0.0/8"), Location{Country: "US", ASN: 1, ASName: "Big"})
	r.Register(netip.MustParsePrefix("10.1.0.0/16"), Location{Country: "CN", ASN: 2, ASName: "Small"})

	if got := r.Country(netip.MustParseAddr("10.2.3.4")); got != "US" {
		t.Errorf("10.2.3.4 country = %s, want US", got)
	}
	if got := r.Country(netip.MustParseAddr("10.1.3.4")); got != "CN" {
		t.Errorf("10.1.3.4 country = %s, want CN", got)
	}
	loc, ok := r.Lookup(netip.MustParseAddr("10.1.9.9"))
	if !ok || loc.ASN != 2 {
		t.Errorf("Lookup = %+v, %v", loc, ok)
	}
}

func TestRegistryUnknown(t *testing.T) {
	var r Registry
	if got := r.Country(netip.MustParseAddr("192.0.2.1")); got != "ZZ" {
		t.Errorf("unregistered country = %s, want ZZ", got)
	}
	if _, ok := r.Lookup(netip.MustParseAddr("192.0.2.1")); ok {
		t.Error("Lookup succeeded on empty registry")
	}
}

func TestRegistryRegisterAfterLookup(t *testing.T) {
	var r Registry
	r.Register(netip.MustParsePrefix("10.0.0.0/8"), Location{Country: "US"})
	_ = r.Country(netip.MustParseAddr("10.0.0.1")) // force sort
	r.Register(netip.MustParsePrefix("10.9.0.0/16"), Location{Country: "JP"})
	if got := r.Country(netip.MustParseAddr("10.9.0.1")); got != "JP" {
		t.Errorf("post-sort registration: got %s, want JP", got)
	}
}

func TestASNameString(t *testing.T) {
	if got := ASNameString(44725, "Sinam LLC"); got != "AS44725 Sinam LLC" {
		t.Errorf("ASNameString = %q", got)
	}
}
