// Trafficanalysis: §5 in miniature. Synthesize a year of DoT adoption plus
// one scanning campaign, push it through a sampling NetFlow router, screen
// out the scanner, and print the monthly flow series (Fig. 11 style), the
// per-/24 concentration (Fig. 12 style) and the passive-DNS view of DoH
// bootstrap domains (Fig. 13 style).
package main

import (
	"fmt"
	"net/netip"
	"time"

	"dnsencryption.info/doe/internal/analysis"
	"dnsencryption.info/doe/internal/netflow"
	"dnsencryption.info/doe/internal/passivedns"
	"dnsencryption.info/doe/internal/scandetect"
	"dnsencryption.info/doe/internal/workload"
)

func main() {
	cloudflare := netip.MustParseAddr("1.1.1.1")
	quad9 := netip.MustParseAddr("9.9.9.9")

	// 1. Synthesize organic DoT adoption: Cloudflare growing, Quad9 flat.
	router := netflow.NewRouter(3, 15*time.Second) // 1-in-3 packet sampling
	gen := workload.NewDoTGenerator(2019)
	gen.Providers = []workload.ProviderTraffic{
		{
			Provider: "cloudflare", Resolver: cloudflare,
			MonthlyFlows: map[workload.Month]int{
				"2018-07": 900, "2018-08": 1000, "2018-09": 1100,
				"2018-10": 1200, "2018-11": 1320, "2018-12": 1410,
			},
		},
		{
			Provider: "quad9", Resolver: quad9,
			MonthlyFlows: map[workload.Month]int{
				"2018-07": 300, "2018-08": 260, "2018-09": 330,
				"2018-10": 280, "2018-11": 340, "2018-12": 290,
			},
		},
	}
	organic := gen.Generate(router)

	// 2. A research scanner sweeps port 853 in September.
	scanSrc := netip.MustParseAddr("198.51.100.77")
	workload.GenerateScan(router, scanSrc,
		time.Date(2018, 9, 14, 0, 0, 0, 0, time.UTC), 500)

	records := router.Flush()
	fmt.Printf("organic flows generated: %d; sampled flow records: %d\n\n", organic, len(records))

	// 3. Screen out scanners before analysis (§5.2).
	detector := scandetect.NewDetector(853)
	verdicts := detector.Classify(records)
	for _, v := range verdicts {
		if v.Scanner {
			fmt.Printf("screened scanner %v: %s (fanout %d, %.0f%% SYN-only)\n",
				v.Source, v.Reason, v.DistinctDsts, v.SYNOnlyFraction*100)
		}
	}
	organicRecords := scandetect.FilterOrganic(records, verdicts)

	// 4. Select DoT flows and aggregate.
	analyzer := &netflow.Analyzer{Resolvers: map[netip.Addr]string{
		cloudflare: "cloudflare",
		quad9:      "quad9",
	}}
	flows := analyzer.SelectDoT(organicRecords)
	fig := &analysis.Figure{Title: "Monthly DoT flows (sampled)", XLabel: "month", YLabel: "flows"}
	counts := netflow.MonthlyCounts(flows)
	for provider, byMonth := range counts {
		for _, m := range workload.MonthsBetween("2018-07", "2018-12") {
			fig.AddPoint(provider, m, float64(byMonth[m]))
		}
	}
	fmt.Println()
	fmt.Println(fig.Render())

	stats := netflow.NetblockStats(flows, "cloudflare")
	fmt.Printf("client /24s: %d; top-5 share %.0f%%; active <1 week: %.0f%%\n\n",
		len(stats), 100*netflow.TopShare(stats, 5), 100*netflow.TemporaryFraction(stats, 7))

	// 5. Passive DNS view of DoH bootstrap domains.
	db := passivedns.NewDB()
	workload.GenerateDoH(db, []workload.DoHDomainTraffic{
		{Domain: "dns.google", MonthlyQueries: map[workload.Month]int{
			"2018-10": 50000, "2018-11": 54000, "2018-12": 60000,
		}},
		{Domain: "doh.cleanbrowsing.org", MonthlyQueries: map[workload.Month]int{
			"2018-10": 300, "2018-11": 700, "2018-12": 1600,
		}},
	})
	for _, domain := range []string{"dns.google", "doh.cleanbrowsing.org"} {
		agg, _ := db.Lookup(domain)
		fmt.Printf("%-24s total=%7d  first=%s last=%s  monthly=%v\n",
			domain, agg.Count,
			agg.FirstSeen.Format("2006-01-02"), agg.LastSeen.Format("2006-01-02"),
			db.MonthlyVolume(domain))
	}
}
