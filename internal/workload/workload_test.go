package workload

import (
	"net/netip"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/netflow"
	"dnsencryption.info/doe/internal/passivedns"
)

var (
	cfDoT = netip.MustParseAddr("1.1.1.1")
	q9DoT = netip.MustParseAddr("9.9.9.9")
)

func TestMonthsBetween(t *testing.T) {
	months := MonthsBetween("2017-07", "2019-01")
	if len(months) != 19 {
		t.Fatalf("months = %d, want 19", len(months))
	}
	if months[0] != "2017-07" || months[18] != "2019-01" {
		t.Errorf("range = %v..%v", months[0], months[18])
	}
}

func TestGenerateProducesGrowingMonthlySeries(t *testing.T) {
	g := NewDoTGenerator(1)
	g.Providers = []ProviderTraffic{{
		Provider: "cloudflare",
		Resolver: cfDoT,
		MonthlyFlows: map[Month]int{
			"2018-07": 400,
			"2018-12": 640, // +60%, mirroring the paper's +56%
		},
	}}
	router := netflow.NewRouter(1, 15*time.Second)
	organic := g.Generate(router)
	if organic != 1040 {
		t.Errorf("organic flows = %d", organic)
	}
	analyzer := &netflow.Analyzer{Resolvers: map[netip.Addr]string{cfDoT: "cloudflare"}}
	flows := analyzer.SelectDoT(router.Flush())
	counts := netflow.MonthlyCounts(flows)["cloudflare"]
	jul, dec := counts["2018-07"], counts["2018-12"]
	if jul == 0 || dec == 0 {
		t.Fatalf("monthly counts = %v", counts)
	}
	growth := float64(dec-jul) / float64(jul)
	if growth < 0.3 || growth > 0.9 {
		t.Errorf("growth = %v, want ≈0.6", growth)
	}
}

func TestGenerateHeavyTailNetblocks(t *testing.T) {
	g := NewDoTGenerator(2)
	g.Providers = []ProviderTraffic{{
		Provider:     "cloudflare",
		Resolver:     cfDoT,
		MonthlyFlows: map[Month]int{"2018-10": 2000},
	}}
	router := netflow.NewRouter(1, 15*time.Second)
	g.Generate(router)
	analyzer := &netflow.Analyzer{Resolvers: map[netip.Addr]string{cfDoT: "cloudflare"}}
	flows := analyzer.SelectDoT(router.Flush())
	stats := netflow.NetblockStats(flows, "cloudflare")

	top5 := netflow.TopShare(stats, 5)
	if top5 < 0.35 || top5 > 0.55 {
		t.Errorf("top-5 share = %v, want ≈0.44", top5)
	}
	// At this miniature scale the fixed giant/medium tiers weigh more
	// than at study scale (where the fraction lands at ≈95%).
	temp := netflow.TemporaryFraction(stats, 7)
	if temp < 0.85 {
		t.Errorf("temporary fraction = %v, want >= 0.85 (paper: 96%%)", temp)
	}
}

func TestGenerateMultipleProviders(t *testing.T) {
	g := NewDoTGenerator(3)
	g.Providers = []ProviderTraffic{
		{Provider: "cloudflare", Resolver: cfDoT, MonthlyFlows: map[Month]int{"2018-10": 300}},
		{Provider: "quad9", Resolver: q9DoT, MonthlyFlows: map[Month]int{"2018-10": 100}},
	}
	router := netflow.NewRouter(1, 15*time.Second)
	g.Generate(router)
	analyzer := &netflow.Analyzer{Resolvers: map[netip.Addr]string{cfDoT: "cloudflare", q9DoT: "quad9"}}
	counts := netflow.MonthlyCounts(analyzer.SelectDoT(router.Flush()))
	if counts["cloudflare"]["2018-10"] <= counts["quad9"]["2018-10"] {
		t.Errorf("provider volumes out of order: %v", counts)
	}
}

func TestGenerateScanIsDetectable(t *testing.T) {
	router := netflow.NewRouter(1, 15*time.Second)
	src := netip.MustParseAddr("50.1.1.1")
	GenerateScan(router, src, time.Date(2018, 9, 3, 0, 0, 0, 0, time.UTC), 200)
	recs := router.Flush()
	if len(recs) != 200 {
		t.Fatalf("records = %d", len(recs))
	}
	for _, r := range recs {
		if r.Flags != netflow.FlagSYN {
			t.Fatalf("scan flow has flags %x, want bare SYN", r.Flags)
		}
	}
}

func TestGenerateDoH(t *testing.T) {
	db := passivedns.NewDB()
	GenerateDoH(db, []DoHDomainTraffic{{
		Domain: "doh.cleanbrowsing.org",
		MonthlyQueries: map[Month]int{
			"2018-09": 200,
			"2019-03": 1915,
		},
	}})
	monthly := db.MonthlyVolume("doh.cleanbrowsing.org")
	if len(monthly) != 2 {
		t.Fatalf("monthly = %+v", monthly)
	}
	if monthly[0].Count != 200 || monthly[1].Count != 1915 {
		t.Errorf("volumes = %+v", monthly)
	}
	// The paper's ~10x growth claim should be derivable.
	if g := float64(monthly[1].Count) / float64(monthly[0].Count); g < 9 || g > 10.5 {
		t.Errorf("growth factor = %v", g)
	}
	agg, ok := db.Lookup("doh.cleanbrowsing.org")
	if !ok || agg.Count != 2115 {
		t.Errorf("aggregate = %+v", agg)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int {
		g := NewDoTGenerator(9)
		g.Providers = []ProviderTraffic{{
			Provider: "cloudflare", Resolver: cfDoT,
			MonthlyFlows: map[Month]int{"2018-10": 500},
		}}
		router := netflow.NewRouter(3, 15*time.Second)
		g.Generate(router)
		return len(router.Flush())
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic: %d vs %d sampled records", a, b)
	}
}
