package doh

// HTTP/2 multiplexing for DoH (RFC 8484 over RFC 7540): many concurrent
// streams per TLS session, selected by ALPN when Client.Mux is set. Both
// endpoints live in this repository, so the implementation is the small
// deterministic subset the study needs rather than a general h2 stack:
//
//   - connection setup is client preface + one SETTINGS exchange with no
//     SETTINGS ACKs in either direction — an ACK would be the only h2 write
//     not paired with a read, and any unpaired write races the peer's
//     virtual-clock advances;
//   - HPACK uses literal-without-indexing fields only (no dynamic table, no
//     Huffman coding), so header blocks parse statelessly;
//   - flow control is not enforced: DNS messages are far below the initial
//     window and both ends ignore WINDOW_UPDATE.
//
// The client mirrors dnsclient.Mux: a write lock serializes stream-ID
// allocation, frame building, the per-query clock charge, and the Write; a
// demux reader goroutine reassembles each stream (HEADERS then DATA) and
// parks the response in the query's rendezvous slot.

import (
	"bufio"
	"context"
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"strings"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/bufpool"
	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/netsim"
)

// h2session is the client half of the multiplexed DoH path.
type h2session struct {
	limit    int
	sem      chan struct{}
	clock    *netsim.Conn
	cost     time.Duration
	method   Method
	template Template

	// Write side, serialized by wmu: stream-ID allocation, HPACK/frame
	// building, the per-query clock charge, and the TLS write.
	wmu  sync.Mutex
	tls  io.Writer
	next uint32 // next client stream ID; odd (RFC 7540 §5.1.1)
	wbuf *[]byte
	pbuf *[]byte // packed DNS query scratch
	qbuf *[]byte // GET :path scratch (path?dns=base64url)

	// Demux state, guarded by mu; slots recycle through a free list.
	mu       sync.Mutex
	br       *bufio.Reader
	inflight map[uint32]*h2Pending
	free     *h2Pending
	dead     error
	closed   bool
	started  bool
}

// h2Pending is one stream's rendezvous slot; status and body accumulate
// across the stream's HEADERS and DATA frames until END_STREAM delivers.
type h2Pending struct {
	ch     chan h2Delivery // buffered, capacity 1: the reader never blocks
	start  time.Duration
	status int
	body   []byte
	next   *h2Pending
}

type h2Delivery struct {
	msg *dnswire.Message
	lat time.Duration
	err error
}

// startH2 upgrades a freshly handshaken session to HTTP/2: verify the ALPN
// result, send the client preface and an empty SETTINGS in one write, and
// read the server's SETTINGS. The extra round trip lands in SetupLatency.
func (conn *Conn) startH2() error {
	if conn.tls.ConnectionState().NegotiatedProtocol != "h2" {
		return fmt.Errorf("doh: server did not negotiate HTTP/2")
	}
	hello := append([]byte(nil), dnswire.H2ClientPreface...)
	hello, err := dnswire.AppendH2Frame(hello, dnswire.H2FrameSettings, 0, 0, nil)
	if err != nil {
		return err
	}
	if _, err := conn.tls.Write(hello); err != nil {
		return err
	}
	f, _, err := dnswire.ReadH2FrameAppend(conn.br, nil)
	if err != nil {
		return fmt.Errorf("doh: h2 setup: %w", err)
	}
	if f.Type != dnswire.H2FrameSettings || f.StreamID != 0 {
		return fmt.Errorf("doh: h2 setup: expected SETTINGS, got %v", f.Type)
	}
	limit := conn.client.MaxInFlight
	if limit <= 0 {
		limit = dnsclient.DefaultMaxInFlight
	}
	conn.h2 = &h2session{
		limit:    limit,
		sem:      make(chan struct{}, limit),
		clock:    conn.raw,
		cost:     conn.client.CryptoCost,
		method:   conn.client.Method,
		template: conn.template,
		tls:      conn.tls,
		next:     1,
		wbuf:     bufpool.Get(2048), //doelint:transfer -- owned by h2session; released in close
		pbuf:     bufpool.Get(512),  //doelint:transfer -- owned by h2session; released in close
		qbuf:     bufpool.Get(512),  //doelint:transfer -- owned by h2session; released in close
		br:       conn.br,
		inflight: make(map[uint32]*h2Pending, limit),
	}
	return nil
}

// MaxInFlight reports the session's in-flight stream limit, or 0 for a
// serial (HTTP/1.1) session.
func (conn *Conn) MaxInFlight() int {
	if conn.h2 == nil {
		return 0
	}
	return conn.h2.limit
}

// Multiplexed reports whether the session negotiated HTTP/2.
func (conn *Conn) Multiplexed() bool { return conn.h2 != nil }

func (h *h2session) acquire(ctx context.Context) error {
	select {
	case h.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("doh: h2 query: %w", ctx.Err())
	}
}

func (h *h2session) release() { <-h.sem }

func (h *h2session) getSlotLocked() *h2Pending {
	if p := h.free; p != nil {
		h.free = p.next
		p.next = nil
		return p
	}
	return &h2Pending{ch: make(chan h2Delivery, 1)} //doelint:allow hotalloc -- slots are recycled through the free list; steady state allocates none
}

func (h *h2session) putSlot(p *h2Pending) {
	h.mu.Lock()
	p.next = h.free
	h.free = p
	h.mu.Unlock()
}

// register allocates the next stream ID and an in-flight slot stamped with
// start; callers hold h.wmu. Stream IDs increase monotonically (RFC 7540
// §5.1.1) so, unlike DNS transaction IDs, they cannot collide.
func (h *h2session) register(start time.Duration) (*h2Pending, uint32, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, 0, dnsclient.ErrClosed
	}
	if h.dead != nil {
		return nil, 0, h.dead
	}
	sid := h.next
	h.next += 2
	p := h.getSlotLocked()
	p.start = start
	p.status = 0
	p.body = p.body[:0]
	h.inflight[sid] = p
	if !h.started {
		h.started = true
		go h.readLoop()
	}
	return p, sid, nil
}

// deregister removes sid from the in-flight table; false means the reader
// already delivered (the delivery is buffered in the slot's channel).
func (h *h2session) deregister(sid uint32) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, mine := h.inflight[sid]; !mine {
		return false
	}
	delete(h.inflight, sid)
	return true
}

// appendStreamLocked builds one query's frames — HEADERS carrying the RFC
// 8484 binding, plus a DATA frame for POST — onto wb and registers the
// stream. Callers hold h.wmu.
//
//doelint:hotpath
func (h *h2session) appendStreamLocked(wb []byte, start time.Duration, name string, qtype dnswire.Type) ([]byte, *h2Pending, uint32, error) {
	p, sid, err := h.register(start)
	if err != nil {
		return wb, nil, 0, err
	}
	// RFC 8484 recommends ID 0 for cache friendliness.
	q := dnswire.NewQuery(0, name, qtype)
	packed, err := q.AppendPack((*h.pbuf)[:0])
	*h.pbuf = packed
	if err != nil {
		h.deregister(sid)
		h.putSlot(p)
		return wb, nil, 0, err
	}
	hstart := len(wb)
	wb = dnswire.ReserveH2FrameHeader(wb)
	if h.method == POST {
		wb = dnswire.AppendHpackLiteral(wb, ":method", "POST")
		wb = dnswire.AppendHpackLiteral(wb, ":scheme", "https")
		wb = dnswire.AppendHpackLiteral(wb, ":authority", h.template.Host)
		wb = dnswire.AppendHpackLiteral(wb, ":path", h.template.Path)
		wb = dnswire.AppendHpackLiteral(wb, "content-type", ContentType)
		wb = dnswire.AppendHpackLiteral(wb, "accept", ContentType)
		wb, err = dnswire.FinishH2Frame(wb, hstart, dnswire.H2FrameHeaders, dnswire.H2FlagEndHeaders, sid)
		if err == nil {
			wb, err = dnswire.AppendH2Frame(wb, dnswire.H2FrameData, dnswire.H2FlagEndStream, sid, packed)
		}
	} else {
		wb = dnswire.AppendHpackLiteral(wb, ":method", "GET")
		wb = dnswire.AppendHpackLiteral(wb, ":scheme", "https")
		wb = dnswire.AppendHpackLiteral(wb, ":authority", h.template.Host)
		pb := (*h.qbuf)[:0]
		pb = append(pb, h.template.Path...)
		pb = append(pb, "?dns="...)
		n := base64.RawURLEncoding.EncodedLen(len(packed))
		off := len(pb)
		pb = bufpool.Grow(pb, n)
		base64.RawURLEncoding.Encode(pb[off:], packed)
		*h.qbuf = pb
		wb = dnswire.AppendHpackLiteralBytes(wb, ":path", pb)
		wb = dnswire.AppendHpackLiteral(wb, "accept", ContentType)
		wb, err = dnswire.FinishH2Frame(wb, hstart, dnswire.H2FrameHeaders, dnswire.H2FlagEndStream|dnswire.H2FlagEndHeaders, sid)
	}
	if err != nil {
		h.deregister(sid)
		h.putSlot(p)
		return wb, nil, 0, err
	}
	return wb, p, sid, nil
}

// send writes one query's frames under the write lock.
//
//doelint:hotpath
func (h *h2session) send(name string, qtype dnswire.Type) (*h2Pending, uint32, error) {
	h.wmu.Lock()
	defer h.wmu.Unlock()
	wb, p, sid, err := h.appendStreamLocked((*h.wbuf)[:0], h.clock.Elapsed(), name, qtype)
	*h.wbuf = wb
	if err != nil {
		return nil, 0, err
	}
	h.clock.AddLatency(h.cost)
	if _, err := h.tls.Write(wb); err != nil {
		h.deregister(sid)
		h.fail(err)
		return nil, 0, err
	}
	return p, sid, nil
}

// wait blocks for the stream's delivery, honouring ctx; it releases the
// caller's semaphore slot and recycles the rendezvous slot.
//
//doelint:hotpath
func (h *h2session) wait(ctx context.Context, p *h2Pending, sid uint32) (*dnsclient.Result, error) {
	var d h2Delivery
	select {
	case d = <-p.ch:
	case <-ctx.Done():
		if h.deregister(sid) {
			h.putSlot(p)
			h.release()
			return nil, fmt.Errorf("doh: h2 query: %w", ctx.Err())
		}
		d = <-p.ch
	}
	h.putSlot(p)
	h.release()
	if d.err != nil {
		return nil, d.err
	}
	return &dnsclient.Result{Msg: d.msg, Latency: d.lat}, nil
}

// exchange is one concurrent-safe DoH transaction on the h2 session.
//
//doelint:hotpath
func (h *h2session) exchange(ctx context.Context, name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("doh: h2 query: %w", err)
	}
	if err := h.acquire(ctx); err != nil {
		return nil, err
	}
	p, sid, err := h.send(name, qtype)
	if err != nil {
		h.release()
		return nil, err
	}
	return h.wait(ctx, p, sid)
}

// batch issues len(names) streams as one coalesced burst — all frames leave
// in a single TLS write — and collects the responses in query order. See
// dnsclient.Mux.Batch for why single-write bursts are the deterministic face
// of multiplexing.
func (h *h2session) batch(ctx context.Context, names []string, qtype dnswire.Type, out []dnsclient.Result) ([]dnsclient.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("doh: h2 batch: %w", err)
	}
	if len(names) > h.limit {
		return nil, fmt.Errorf("doh: batch of %d exceeds in-flight limit %d", len(names), h.limit)
	}
	for i := range names {
		if err := h.acquire(ctx); err != nil {
			for ; i > 0; i-- {
				h.release()
			}
			return nil, err
		}
	}
	slots := make([]*h2Pending, len(names))
	sids := make([]uint32, len(names))
	h.wmu.Lock()
	wb := (*h.wbuf)[:0]
	// All slots are stamped at batch start — see dnsclient.Mux.Batch: the
	// burst shares one request segment and one coalesced response segment,
	// so each stream's latency is the whole batch round trip.
	start := h.clock.Elapsed()
	var err error
	for i, name := range names {
		var p *h2Pending
		var sid uint32
		wb, p, sid, err = h.appendStreamLocked(wb, start, name, qtype)
		if err != nil {
			break
		}
		slots[i], sids[i] = p, sid
		h.clock.AddLatency(h.cost)
	}
	if err == nil {
		if _, werr := h.tls.Write(wb); werr != nil {
			h.fail(werr)
			err = werr
		}
	}
	*h.wbuf = wb
	h.wmu.Unlock()
	if err != nil {
		for i := range names {
			if slots[i] != nil && h.deregister(sids[i]) {
				h.putSlot(slots[i])
			}
			h.release()
		}
		return nil, err
	}
	out = out[:0]
	var firstErr error
	for i := range names {
		res, err := h.wait(ctx, slots[i], sids[i])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			out = append(out, dnsclient.Result{})
			continue
		}
		out = append(out, *res)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// readLoop is the session's demux reader: it owns the TLS read side,
// reassembles streams frame by frame, and delivers each response — with its
// per-stream virtual latency — to the matching rendezvous slot.
//
//doelint:hotpath
func (h *h2session) readLoop() {
	scratch := bufpool.Get(512)
	defer bufpool.Put(scratch)
	for {
		f, payload, err := dnswire.ReadH2FrameAppend(h.br, (*scratch)[:0])
		if err != nil {
			h.fail(err)
			return
		}
		*scratch = payload[:0]
		switch f.Type {
		case dnswire.H2FrameHeaders:
			h.mu.Lock()
			if p := h.inflight[f.StreamID]; p != nil {
				p.status = parseH2Status(payload)
				p.body = p.body[:0]
				if f.EndStream() {
					h.deliverLocked(f.StreamID, p)
				}
			}
			h.mu.Unlock()
		case dnswire.H2FrameData:
			h.mu.Lock()
			if p := h.inflight[f.StreamID]; p != nil {
				p.body = append(p.body, payload...)
				if f.EndStream() {
					h.deliverLocked(f.StreamID, p)
				}
			}
			h.mu.Unlock()
		case dnswire.H2FrameRSTStream:
			h.mu.Lock()
			if p := h.inflight[f.StreamID]; p != nil {
				delete(h.inflight, f.StreamID)
				p.ch <- h2Delivery{err: fmt.Errorf("doh: stream %d reset by server", f.StreamID)}
			}
			h.mu.Unlock()
		case dnswire.H2FrameGoAway:
			h.fail(fmt.Errorf("doh: server sent GOAWAY"))
			return
		default:
			// SETTINGS, PING and WINDOW_UPDATE carry no response data and —
			// per the package's no-ACK, no-flow-control subset — need no
			// reply.
		}
	}
}

// deliverLocked completes a stream; callers hold h.mu.
func (h *h2session) deliverLocked(sid uint32, p *h2Pending) {
	delete(h.inflight, sid)
	if p.status != http.StatusOK {
		p.ch <- h2Delivery{err: fmt.Errorf("%w: %d", ErrHTTPStatus, p.status)}
		return
	}
	m, err := dnswire.Unpack(p.body)
	if err != nil {
		p.ch <- h2Delivery{err: err}
		return
	}
	p.ch <- h2Delivery{msg: m, lat: h.clock.Elapsed() - p.start}
}

// fail marks the session dead and delivers err to every in-flight stream.
func (h *h2session) fail(err error) {
	h.mu.Lock()
	if h.dead == nil {
		h.dead = err
	} else {
		err = h.dead
	}
	for sid, p := range h.inflight {
		delete(h.inflight, sid)
		p.ch <- h2Delivery{err: err}
	}
	h.mu.Unlock()
}

// close fails all in-flight streams with ErrClosed and releases the write
// buffers; the owning Conn closes the TLS connection, unblocking the reader.
func (h *h2session) close() {
	h.wmu.Lock()
	defer h.wmu.Unlock()
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()
	h.fail(dnsclient.ErrClosed)
	bufpool.Put(h.wbuf)
	bufpool.Put(h.pbuf)
	bufpool.Put(h.qbuf)
	h.wbuf, h.pbuf, h.qbuf = nil, nil, nil
}

// parseH2Status extracts :status from a response header block; 0 on parse
// failure (which deliverLocked then rejects as a non-200).
func parseH2Status(block []byte) int {
	for len(block) > 0 {
		name, value, rest, err := dnswire.ReadHpackLiteral(block)
		if err != nil {
			return 0
		}
		if string(name) == ":status" {
			status := 0
			for _, c := range value {
				if c < '0' || c > '9' {
					return 0
				}
				status = status*10 + int(c-'0')
			}
			return status
		}
		block = rest
	}
	return 0
}

// ---- server side ----

// h2Post accumulates a POST request whose body arrives in DATA frames after
// its HEADERS.
type h2Post struct {
	method string
	path   string
	body   []byte
}

// serveH2 is the server's per-connection HTTP/2 loop: preface and SETTINGS
// exchange (no ACKs), then a frame loop that answers each completed stream.
// Responses to concurrently arriving streams coalesce in the write buffer
// until no further frame is already buffered — the h2 analogue of the RFC
// 7766 §6.2.1.1 response coalescing in dnsserver — so a client burst that
// arrived in one segment is answered in one segment.
//
//doelint:hotpath
func (s *Server) serveH2(conn *netsim.Conn, tc io.ReadWriter, paths map[string]bool) {
	remote := conn.RemoteAddr().(netsim.Addr).IP
	br := bufio.NewReaderSize(tc, 4096) //doelint:allow hotalloc -- one reader per connection, amortized over its streams
	preface := make([]byte, len(dnswire.H2ClientPreface))
	if _, err := io.ReadFull(br, preface); err != nil || string(preface) != dnswire.H2ClientPreface {
		return
	}
	f, _, err := dnswire.ReadH2FrameAppend(br, nil)
	if err != nil || f.Type != dnswire.H2FrameSettings || f.StreamID != 0 {
		return
	}
	hello, err := dnswire.AppendH2Frame(nil, dnswire.H2FrameSettings, 0, 0, nil)
	if err != nil {
		return
	}
	if _, err := tc.Write(hello); err != nil {
		return
	}

	rbuf := bufpool.Get(512)
	wbuf := bufpool.Get(512)
	defer bufpool.Put(rbuf)
	defer bufpool.Put(wbuf)
	out := (*wbuf)[:0]
	var posts map[uint32]*h2Post // lazily allocated; GET-only clients never need it
	for {
		f, payload, err := dnswire.ReadH2FrameAppend(br, (*rbuf)[:0])
		if err != nil {
			return
		}
		*rbuf = payload[:0]
		switch f.Type {
		case dnswire.H2FrameHeaders:
			method, path, ok := parseH2Request(payload)
			if !ok {
				return
			}
			if f.EndStream() {
				out, ok = s.appendH2Response(out, conn, remote, f.StreamID, method, path, nil, paths)
				if !ok {
					return
				}
			} else {
				if posts == nil {
					posts = make(map[uint32]*h2Post)
				}
				posts[f.StreamID] = &h2Post{method: method, path: path}
			}
		case dnswire.H2FrameData:
			st := posts[f.StreamID]
			if st == nil {
				return
			}
			st.body = append(st.body, payload...)
			if f.EndStream() {
				delete(posts, f.StreamID)
				var ok bool
				out, ok = s.appendH2Response(out, conn, remote, f.StreamID, st.method, st.path, st.body, paths)
				if !ok {
					return
				}
			}
		case dnswire.H2FrameRSTStream:
			delete(posts, f.StreamID)
		case dnswire.H2FrameGoAway:
			return
		default:
			// SETTINGS, PING, WINDOW_UPDATE: ignored per the no-ACK,
			// no-flow-control subset.
		}
		if len(out) > 0 && br.Buffered() == 0 {
			if _, err := tc.Write(out); err != nil {
				return
			}
			*wbuf = out
			out = out[:0]
		}
	}
}

// parseH2Request extracts :method and :path from a request header block.
func parseH2Request(block []byte) (method, path string, ok bool) {
	for len(block) > 0 {
		name, value, rest, err := dnswire.ReadHpackLiteral(block)
		if err != nil {
			return "", "", false
		}
		switch string(name) {
		case ":method":
			method = string(value)
		case ":path":
			path = string(value)
		}
		block = rest
	}
	return method, path, method != "" && path != ""
}

// appendH2Response answers one completed stream, appending its HEADERS and
// DATA frames to out and charging the handler's processing time to the
// connection. ok is false when the response cannot be framed (fatal).
func (s *Server) appendH2Response(out []byte, conn *netsim.Conn, remote netip.Addr, sid uint32, method, path string, body []byte, paths map[string]bool) ([]byte, bool) {
	status := http.StatusOK
	ctype := ContentType
	var respBody []byte

	p, query := path, ""
	if i := strings.IndexByte(path, '?'); i >= 0 {
		p, query = path[:i], path[i+1:]
	}
	var wire []byte
	switch {
	case !paths[p]:
		status, ctype, respBody = http.StatusNotFound, "text/plain", []byte("not found")
	case method == http.MethodGet:
		dns := queryParam(query, "dns")
		if dns == "" {
			status, ctype, respBody = http.StatusBadRequest, "text/plain", []byte("missing dns parameter")
		} else if decoded, err := base64.RawURLEncoding.DecodeString(dns); err != nil {
			status, ctype, respBody = http.StatusBadRequest, "text/plain", []byte("bad dns parameter")
		} else {
			wire = decoded
		}
	case method == http.MethodPost:
		wire = body
	default:
		status, ctype, respBody = http.StatusMethodNotAllowed, "text/plain", []byte("GET or POST")
	}
	var resp *dnswire.Message
	if wire != nil {
		m, err := dnswire.Unpack(wire)
		if err != nil {
			status, ctype, respBody = http.StatusBadRequest, "text/plain", []byte("malformed DNS message")
		} else {
			r, proc := s.Handler.ServeDNS(remote, m)
			conn.AddLatency(proc + s.ExtraProc)
			resp = r
		}
	}

	for {
		hstart := len(out)
		out = dnswire.ReserveH2FrameHeader(out)
		out = dnswire.AppendHpackLiteral(out, ":status", h2StatusText(status))
		out = dnswire.AppendHpackLiteral(out, "content-type", ctype)
		var err error
		out, err = dnswire.FinishH2Frame(out, hstart, dnswire.H2FrameHeaders, dnswire.H2FlagEndHeaders, sid)
		if err != nil {
			return nil, false
		}
		dstart := len(out)
		out = dnswire.ReserveH2FrameHeader(out)
		if resp != nil {
			// Pack straight into the DATA frame — no intermediate buffer;
			// compression offsets are message-relative so any prefix works.
			if out, err = resp.AppendPack(out); err != nil {
				out = out[:hstart]
				resp = nil
				status, ctype, respBody = http.StatusInternalServerError, "text/plain", []byte("pack error")
				continue
			}
		} else {
			out = append(out, respBody...)
		}
		out, err = dnswire.FinishH2Frame(out, dstart, dnswire.H2FrameData, dnswire.H2FlagEndStream, sid)
		if err != nil {
			return nil, false
		}
		return out, true
	}
}

// h2StatusText renders the status codes this server emits.
func h2StatusText(status int) string {
	switch status {
	case http.StatusOK:
		return "200"
	case http.StatusBadRequest:
		return "400"
	case http.StatusNotFound:
		return "404"
	case http.StatusMethodNotAllowed:
		return "405"
	case http.StatusUnsupportedMediaType:
		return "415"
	default:
		return "500"
	}
}

// queryParam extracts one key's value from a raw query string without
// url.ParseQuery's allocations; values are returned undecoded (base64url
// never needs percent-escaping).
func queryParam(query, key string) string {
	for len(query) > 0 {
		kv := query
		if i := strings.IndexByte(query, '&'); i >= 0 {
			kv, query = query[:i], query[i+1:]
		} else {
			query = ""
		}
		if len(kv) > len(key) && kv[len(key)] == '=' && kv[:len(key)] == key {
			return kv[len(key)+1:]
		}
	}
	return ""
}
