package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// analyzerCtxplumb enforces the context-propagation contract from PR 2:
// cancellation flows from the caller down every query path, so contexts
// are plumbed as parameters, never minted mid-stack or parked in structs.
//
// Three rules:
//
//  1. context.Background()/context.TODO() are banned outside package main.
//     A context tree has exactly one legitimate root per process; a
//     Background() inside a library function silently detaches everything
//     below it from the caller's deadline. Exemptions: deprecated
//     compatibility shims (doc comment carries "Deprecated:"), the
//     convenience-wrapper idiom (a function F whose body calls FContext —
//     the documented non-context twin pattern), and functions annotated
//     //doelint:ctxroot -- <why>.
//
//  2. A context.Context parameter must come first, matching the standard
//     library convention and every Exchange/Query signature in the module.
//
//  3. A context must be forwarded, not stored: writing a context into a
//     struct field or composite literal outlives the call that carried it
//     and resurrects canceled deadlines later (the classic "contained
//     context" bug).
var analyzerCtxplumb = &Analyzer{
	Name: "ctxplumb",
	Doc:  "no context.Background/TODO outside main (//doelint:ctxroot for roots); ctx first param; contexts forwarded, not stored",
	Run:  runCtxplumb,
}

func runCtxplumb(pass *Pass) {
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCtxSignature(pass, fn.Type)
			if fn.Body == nil {
				continue
			}
			if !isMain && !ctxRootExempt(fn) {
				checkCtxRoots(pass, fn)
			}
			checkCtxStores(pass, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkCtxSignature(pass, lit.Type)
				}
				return true
			})
		}
	}
}

// checkCtxSignature flags a context.Context parameter that is not the
// first parameter.
func checkCtxSignature(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		names := len(field.Names)
		if names == 0 {
			names = 1
		}
		if isContextType(pass.Info.TypeOf(field.Type)) && idx > 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter, found at position %d", idx+1)
		}
		idx += names
	}
}

// ctxRootExempt reports whether a function may legitimately mint a root
// context: deprecated shims, annotated roots, and the F -> FContext
// convenience-wrapper idiom.
func ctxRootExempt(fn *ast.FuncDecl) bool {
	if hasFuncDirective(fn, "ctxroot") {
		return true
	}
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if strings.Contains(c.Text, "Deprecated:") {
				return true
			}
		}
	}
	return callsContextTwin(fn)
}

// callsContextTwin detects the convenience-wrapper idiom: F's body calls
// FContext (same name plus the "Context" suffix), delegating the real work
// to the context-taking twin.
func callsContextTwin(fn *ast.FuncDecl) bool {
	twin := fn.Name.Name + "Context"
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if calleeName(call) == twin {
			found = true
		}
		return !found
	})
	return found
}

// checkCtxRoots flags context.Background()/context.TODO() calls.
func checkCtxRoots(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
			return true
		}
		if !isPackageRef(pass, sel.X, "context") {
			return true
		}
		pass.Reportf(call.Pos(),
			"context.%s() outside package main detaches callees from the caller's deadline; accept a ctx parameter or annotate //doelint:ctxroot -- <why>",
			sel.Sel.Name)
		return true
	})
}

// checkCtxStores flags contexts written into struct fields or composite
// literals. The graph builder computes the same condition as a fact; the
// analyzer re-derives it locally so the finding lands on the exact store.
func checkCtxStores(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if _, ok := lhs.(*ast.SelectorExpr); !ok {
					continue
				}
				if i < len(x.Rhs) && isContextType(pass.Info.TypeOf(x.Rhs[i])) {
					pass.Reportf(x.Pos(),
						"context stored in a struct field outlives its call; forward ctx as a parameter instead")
				}
			}
		case *ast.CompositeLit:
			t := pass.Info.TypeOf(x)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Struct); !ok {
				return true
			}
			for _, elt := range x.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if isContextType(pass.Info.TypeOf(val)) {
					pass.Reportf(val.Pos(),
						"context stored in a composite literal outlives its call; forward ctx as a parameter instead")
				}
			}
		}
		return true
	})
}

// isPackageRef reports whether expr names the import of the given package
// path.
func isPackageRef(pass *Pass, expr ast.Expr, path string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.objectOf(id).(*types.PkgName)
	if !ok {
		return false
	}
	return pkg.Imported().Path() == path
}
