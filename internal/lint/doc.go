// Package lint is the repository's custom static-analysis suite, run as
// `go run ./cmd/doelint ./...` and from the self-lint test that keeps the
// tree clean. It is built only on the standard library (go/ast, go/parser,
// go/types, go/token): dependencies are imported from compiler export data
// produced by `go list -export`, so loading the whole module takes well
// under a second and needs no module outside the toolchain.
//
// # Checks
//
//   - determinism: packages listed in Config.DeterministicPackages (the
//     simulation core: internal/netsim, internal/core, internal/workload)
//     must not call global math/rand functions or read the wall clock
//     (time.Now, time.Since, time.After, ...). Randomness flows from a
//     seeded *rand.Rand, time from the simulated clock; rand.New /
//     rand.NewSource / rand.NewZipf are constructors and always allowed.
//
//   - connclose: a value acquired from a Dial/Listen/Accept/Open-style
//     call whose type implements io.Closer must be closed on every return
//     path — via defer, an inline Close, or an ownership transfer
//     (returned, stored, passed to another call, sent on a channel).
//     Returns guarded by the acquisition's own error are exempt: the
//     value is not live when the acquisition failed.
//
//   - errwrap: fmt.Errorf calls that interpolate error values must use
//     %w for each of them, so callers can errors.Is / errors.As through
//     the wrap — the difference between classifying a probe failure as a
//     timeout versus a TLS authentication error.
//
//   - lockbalance: a sync Lock()/RLock() call must have a matching
//     Unlock()/RUnlock() on the same receiver somewhere in the same
//     top-level function (deferred closures included).
//
// # Suppressing a finding
//
// Deliberate exceptions carry an allow directive with a mandatory
// justification, either trailing the offending line or on its own line
// directly above it:
//
//	if !b.deadline.IsZero() && !time.Now().Before(b.deadline) { //doelint:allow determinism -- real-time deadline guard
//
//	//doelint:allow lockbalance -- unlocked by the monitor goroutine
//	m.mu.Lock()
//
// Several checks can share one directive, comma-separated. A directive
// with an unknown check name or a missing justification is itself reported
// under the unsuppressible "directive" check.
//
// # Adding an analyzer
//
// Write a `var analyzerFoo = &Analyzer{Name: "foo", Doc: ..., Run: ...}`
// in a new file, using Pass.Reportf to emit findings, and append it to the
// registry slice in lint.go. The driver hands every analyzer a fully
// type-checked package (AST, *types.Package, *types.Info), so checks can
// resolve imports, methods, and interface satisfaction precisely instead
// of pattern-matching on names. Add a fixture package exercising a true
// positive, a true negative, and a suppressed finding to the table in
// analyzers_test.go — the test harness lints all fixtures in one driver
// run.
package lint
