package core

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"dnsencryption.info/doe/internal/faults"
	"dnsencryption.info/doe/internal/resolver"
)

// vantageEdgePrefixes are the flow origins the fault layer may perturb:
// the two proxy-platform node pools, the controlled vantages and the scan
// sources. The restriction is what keeps reports byte-identical across
// worker counts under faults — flows from these prefixes are only ever
// dialed by one worker task at a time, so each tuple's attempt counter
// advances in a schedule-independent order. Infrastructure legs shared by
// concurrent tasks (the measurement client's proxy hops, resolver upstream
// queries between public resolvers and the authoritative server) stay
// fault-free by design.
func vantageEdgePrefixes() []netip.Prefix {
	return []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/8"),    // global (ProxyRack-style) exit nodes
		netip.MustParsePrefix("11.0.0.0/8"),    // censored (Zhima-style) exit nodes
		netip.MustParsePrefix("172.20.0.0/16"), // controlled vantages (Table 7)
		netip.MustParsePrefix("172.16.3.0/24"), // US scan sources
		netip.MustParsePrefix("172.16.4.0/24"), // CN scan source
	}
}

// FaultRetryPolicy is the attempt budget measurement clients run with when
// fault injection is on: three attempts with 50 ms virtual backoff,
// doubling per retry — the shape real stub resolvers ship with.
func FaultRetryPolicy() resolver.RetryPolicy {
	return resolver.RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond}
}

// FaultProfileNames lists the accepted -faults flag values.
func FaultProfileNames() []string { return []string{"off", "mild", "harsh", "flaky", "regional"} }

// buildFaults assembles and installs the fault injector per s.Config.Faults.
func (s *Study) buildFaults() error {
	if !s.Config.Faults.Enabled() {
		return nil
	}
	inj := faults.New(s.Config.Faults.Seed, s.World.Geo)
	inj.Sources = vantageEdgePrefixes()
	inj.Obs = s.Obs
	switch s.Config.Faults.Profile {
	case "mild":
		inj.Default = faults.Mild()
	case "harsh":
		inj.Default = faults.Harsh()
	case "flaky":
		inj.Default = faults.Flaky(1)
	case "regional":
		// Lossy Southeast-Asian residential paths over a mild baseline —
		// the population the paper's failure analysis spends most time on
		// — plus datagram loss inside CN.
		inj.Default = faults.Mild()
		inj.Regions = map[string]faults.Profile{
			"ID": faults.Harsh(),
			"IN": faults.Harsh(),
			"VN": faults.Harsh(),
			"CN": {
				SYNDrop:    0.04,
				DgramDrop:  0.08,
				Stall:      0.06,
				StallBase:  60 * time.Millisecond,
				DgramStall: 0.05,
			},
		}
	default:
		return fmt.Errorf("core: unknown faults profile %q (have: %s)",
			s.Config.Faults.Profile, strings.Join(FaultProfileNames(), ", "))
	}
	s.Faults = inj
	s.World.SetFaults(inj)
	retry := FaultRetryPolicy()
	s.GlobalPlatform.Retry = retry
	s.CensoredPlatform.Retry = retry
	return nil
}

// retryBudget is the per-exchange attempt budget experiments use for ad-hoc
// loops (DNSCrypt, certificate bootstrap): 1 when faults are off.
func (s *Study) retryBudget() int {
	if s.Faults == nil {
		return 1
	}
	return FaultRetryPolicy().Attempts
}

// retrying runs fn up to budget times, stopping on the first success.
// Experiments use it for exchanges that have no resolver.Transport (and so
// no built-in retry policy) underneath them.
func retrying(budget int, fn func() error) error {
	var err error
	for attempt := 0; attempt < max(1, budget); attempt++ {
		if err = fn(); err == nil {
			return nil
		}
	}
	return err
}

// transportOptions returns the extra resolver options measurement
// transports run with (retry budget under faults, nothing otherwise).
func (s *Study) transportOptions() []resolver.Option {
	if s.Faults == nil {
		return nil
	}
	return []resolver.Option{resolver.WithRetry(FaultRetryPolicy())}
}

// faultsSummary renders the end-of-report recovery section: what the
// injector did to the network and what the retry layer got back. Every
// number is a sum of per-tuple deterministic schedules, so the section is
// byte-identical for any worker count.
func (s *Study) faultsSummary() string {
	st := s.Faults.Stats()
	reach := s.Reachability()
	tally := reach.Global.Retry.Plus(reach.Censored.Retry)
	var b strings.Builder
	fmt.Fprintf(&b, "profile: %s (fault seed %d)\n", s.Config.Faults.Profile, s.Faults.Seed())
	fmt.Fprintf(&b, "stream dials: %d consulted, %d syn-drops, %d refusals, %d handshake-cuts, %d resets, %d flaky-failures, %d stalls\n",
		st.StreamDials, st.SYNDrops, st.Refusals, st.HandshakeCuts, st.Resets, st.FlakyFailures, st.Stalls)
	fmt.Fprintf(&b, "datagrams: %d consulted, %d drops, %d stalls\n",
		st.Datagrams, st.DgramDrops, st.DgramStalls)
	fmt.Fprintf(&b, "reachability lookups: %d attempts, %d retries, %d retry-recovered, %d hard failures\n",
		tally.Attempts, tally.Retries, tally.Recovered, tally.HardFailures)
	return b.String()
}
