package dnswire

// HTTP/2 framing primitives (RFC 7540 §4) for the multiplexed DoH path.
// Both endpoints of the study's h2 connections are in this repository, so
// the subset is deliberately small: 9-byte frame headers, the client
// preface, and HPACK literal-header-field-without-indexing string coding
// (RFC 7541 §5.2, §6.2.2) with no Huffman tables and no dynamic table.
// Like the TCP framing above, the append/parse pairs are allocation-free in
// steady state when handed reused scratch buffers.

import (
	"encoding/binary"
	"fmt"
	"io"
)

// H2ClientPreface is the fixed connection preface every HTTP/2 client sends
// first (RFC 7540 §3.5).
const H2ClientPreface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

// H2FrameHeaderLen is the fixed frame-header size (RFC 7540 §4.1).
const H2FrameHeaderLen = 9

// MaxH2FrameLen is the largest payload this implementation reads or writes:
// the protocol's initial SETTINGS_MAX_FRAME_SIZE, which neither end raises.
const MaxH2FrameLen = 1 << 14

// H2FrameType identifies a frame (RFC 7540 §6).
type H2FrameType uint8

// Frame types the DoH path uses. PUSH_PROMISE, PRIORITY and CONTINUATION
// never appear: headers always fit one frame and neither end pushes.
const (
	H2FrameData         H2FrameType = 0x0
	H2FrameHeaders      H2FrameType = 0x1
	H2FrameRSTStream    H2FrameType = 0x3
	H2FrameSettings     H2FrameType = 0x4
	H2FramePing         H2FrameType = 0x6
	H2FrameGoAway       H2FrameType = 0x7
	H2FrameWindowUpdate H2FrameType = 0x8
)

// String implements fmt.Stringer.
func (t H2FrameType) String() string {
	switch t {
	case H2FrameData:
		return "DATA"
	case H2FrameHeaders:
		return "HEADERS"
	case H2FrameRSTStream:
		return "RST_STREAM"
	case H2FrameSettings:
		return "SETTINGS"
	case H2FramePing:
		return "PING"
	case H2FrameGoAway:
		return "GOAWAY"
	case H2FrameWindowUpdate:
		return "WINDOW_UPDATE"
	}
	return fmt.Sprintf("FRAME(0x%x)", uint8(t))
}

// Frame flags (RFC 7540 §6). ACK shares END_STREAM's bit but applies only to
// SETTINGS and PING frames.
const (
	H2FlagEndStream  byte = 0x1
	H2FlagAck        byte = 0x1
	H2FlagEndHeaders byte = 0x4
)

// H2Frame is a parsed frame header; the payload travels separately.
type H2Frame struct {
	Type     H2FrameType
	Flags    byte
	StreamID uint32
}

// EndStream reports the END_STREAM flag.
func (f H2Frame) EndStream() bool { return f.Flags&H2FlagEndStream != 0 }

// Ack reports the ACK flag (SETTINGS and PING frames).
func (f H2Frame) Ack() bool { return f.Flags&H2FlagAck != 0 }

// AppendH2FrameHeader appends the 9-byte header for a frame whose payload is
// n bytes and returns the extended slice.
func AppendH2FrameHeader(buf []byte, t H2FrameType, flags byte, streamID uint32, n int) ([]byte, error) {
	if n > MaxH2FrameLen {
		return nil, fmt.Errorf("dnswire: h2 payload of %d bytes exceeds frame limit", n)
	}
	return append(buf,
		byte(n>>16), byte(n>>8), byte(n),
		byte(t), flags,
		byte(streamID>>24)&0x7f, byte(streamID>>16), byte(streamID>>8), byte(streamID),
	), nil
}

// ReserveH2FrameHeader appends 9 placeholder bytes for a frame header whose
// payload length is not yet known; FinishH2Frame backfills it once the
// payload has been appended after it.
func ReserveH2FrameHeader(buf []byte) []byte {
	return append(buf, 0, 0, 0, 0, 0, 0, 0, 0, 0)
}

// FinishH2Frame backfills the header reserved at start, sizing the frame to
// everything appended since, and returns buf unchanged in length.
func FinishH2Frame(buf []byte, start int, t H2FrameType, flags byte, streamID uint32) ([]byte, error) {
	n := len(buf) - start - H2FrameHeaderLen
	if n < 0 {
		return nil, fmt.Errorf("dnswire: h2 frame finished before its reserved header")
	}
	if n > MaxH2FrameLen {
		return nil, fmt.Errorf("dnswire: h2 payload of %d bytes exceeds frame limit", n)
	}
	h := buf[start:]
	h[0], h[1], h[2] = byte(n>>16), byte(n>>8), byte(n)
	h[3], h[4] = byte(t), flags
	binary.BigEndian.PutUint32(h[5:9], streamID&0x7fffffff)
	return buf, nil
}

// AppendH2Frame appends a complete frame — header plus payload — to buf and
// returns the extended slice.
//
//doelint:hotpath
func AppendH2Frame(buf []byte, t H2FrameType, flags byte, streamID uint32, payload []byte) ([]byte, error) {
	buf, err := AppendH2FrameHeader(buf, t, flags, streamID, len(payload))
	if err != nil {
		return nil, err
	}
	return append(buf, payload...), nil
}

// ReadH2FrameAppend reads one frame from r, appending its payload after
// len(buf); it returns the parsed header and the extended slice. Passing a
// reused scratch buffer (typically scratch[:0]) makes the steady-state read
// path allocation-free; the returned slice aliases the scratch and must not
// be retained past its next reuse.
//
//doelint:hotpath
func ReadH2FrameAppend(r io.Reader, buf []byte) (H2Frame, []byte, error) {
	// Like ReadTCPAppend, the header lands in the scratch itself and is
	// then overwritten by the payload; a local array would escape through
	// the io.Reader call.
	start := len(buf)
	buf = growLen(buf, H2FrameHeaderLen)
	if _, err := io.ReadFull(r, buf[start:]); err != nil {
		return H2Frame{}, nil, err
	}
	h := buf[start:]
	n := int(h[0])<<16 | int(h[1])<<8 | int(h[2])
	f := H2Frame{
		Type:     H2FrameType(h[3]),
		Flags:    h[4],
		StreamID: binary.BigEndian.Uint32(h[5:]) & 0x7fffffff,
	}
	if n > MaxH2FrameLen {
		return H2Frame{}, nil, fmt.Errorf("dnswire: h2 frame of %d bytes exceeds frame limit", n)
	}
	buf = growLen(buf[:start], n)
	if _, err := io.ReadFull(r, buf[start:]); err != nil {
		return H2Frame{}, nil, err
	}
	return f, buf, nil
}

// AppendHpackInt appends v as an HPACK prefix integer (RFC 7541 §5.1):
// first holds the bits above the prefix, prefixBits is the prefix width.
func AppendHpackInt(buf []byte, first byte, prefixBits uint, v int) []byte {
	limit := (1 << prefixBits) - 1
	if v < limit {
		return append(buf, first|byte(v))
	}
	buf = append(buf, first|byte(limit))
	v -= limit
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// readHpackInt parses an HPACK prefix integer, returning the value and the
// remaining input.
func readHpackInt(b []byte, prefixBits uint) (int, []byte, error) {
	if len(b) == 0 {
		return 0, nil, errHpackTruncated
	}
	limit := (1 << prefixBits) - 1
	v := int(b[0]) & limit
	b = b[1:]
	if v < limit {
		return v, b, nil
	}
	shift := uint(0)
	for {
		if len(b) == 0 || shift > 28 {
			return 0, nil, errHpackTruncated
		}
		c := b[0]
		b = b[1:]
		v += int(c&0x7f) << shift
		if c&0x80 == 0 {
			return v, b, nil
		}
		shift += 7
	}
}

var errHpackTruncated = fmt.Errorf("dnswire: truncated HPACK field")

// AppendHpackLiteral appends one header field as an HPACK literal without
// indexing with a new name (RFC 7541 §6.2.2), raw strings, no Huffman.
//
//doelint:hotpath
func AppendHpackLiteral(buf []byte, name, value string) []byte {
	buf = append(buf, 0x00)
	buf = AppendHpackInt(buf, 0x00, 7, len(name))
	buf = append(buf, name...)
	buf = AppendHpackInt(buf, 0x00, 7, len(value))
	return append(buf, value...)
}

// AppendHpackLiteralBytes is AppendHpackLiteral for a []byte value, avoiding
// a string conversion on the query path.
//
//doelint:hotpath
func AppendHpackLiteralBytes(buf []byte, name string, value []byte) []byte {
	buf = append(buf, 0x00)
	buf = AppendHpackInt(buf, 0x00, 7, len(name))
	buf = append(buf, name...)
	buf = AppendHpackInt(buf, 0x00, 7, len(value))
	return append(buf, value...)
}

// ReadHpackLiteral parses one literal-without-indexing field produced by
// AppendHpackLiteral, returning name and value slices aliasing b and the
// remaining input. Fields using indexing or Huffman coding are rejected —
// the study's own endpoints never emit them.
//
//doelint:hotpath
func ReadHpackLiteral(b []byte) (name, value, rest []byte, err error) {
	if len(b) == 0 {
		return nil, nil, nil, errHpackTruncated
	}
	// 0x00 = literal without indexing, 0x10 = never-indexed: both carry the
	// same new-name layout. Anything else needs table state we don't keep.
	if b[0] != 0x00 && b[0] != 0x10 {
		return nil, nil, nil, fmt.Errorf("dnswire: unsupported HPACK field type 0x%02x", b[0])
	}
	b = b[1:]
	name, b, err = readHpackString(b)
	if err != nil {
		return nil, nil, nil, err
	}
	value, b, err = readHpackString(b)
	if err != nil {
		return nil, nil, nil, err
	}
	return name, value, b, nil
}

// readHpackString parses one raw string literal (H bit clear).
func readHpackString(b []byte) ([]byte, []byte, error) {
	if len(b) == 0 {
		return nil, nil, errHpackTruncated
	}
	if b[0]&0x80 != 0 {
		return nil, nil, fmt.Errorf("dnswire: Huffman-coded HPACK string not supported")
	}
	n, b, err := readHpackInt(b, 7)
	if err != nil {
		return nil, nil, err
	}
	if n > len(b) {
		return nil, nil, errHpackTruncated
	}
	return b[:n], b[n:], nil
}
