package dnsclient

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/netsim"
)

// muxEchoAddr derives a per-name answer so tests can prove each pipelined
// query got its own response: q<i>.example.com -> 10.9.<i/256>.<i%256>.
func muxEchoAddr(name string) netip.Addr {
	var i int
	fmt.Sscanf(name, "q%d.", &i)
	return netip.AddrFrom4([4]byte{10, 9, byte(i >> 8), byte(i)})
}

// serveMuxReversed registers a stream server that reads batch-many queries,
// then answers them all in REVERSED order as one coalesced write — the
// worst-case legal reordering under RFC 7766 §7.
func serveMuxReversed(w *netsim.World, batch int) {
	w.RegisterStream(resolverIP, 53, func(conn *netsim.Conn) {
		defer conn.Close()
		for {
			resps := make([][]byte, 0, batch)
			for i := 0; i < batch; i++ {
				msg, err := dnswire.ReadTCP(conn)
				if err != nil {
					return
				}
				m, err := dnswire.Unpack(msg)
				if err != nil {
					return
				}
				resp := m.Reply()
				resp.AddAnswer(m.Question1().Name, 60, dnswire.A{Addr: muxEchoAddr(m.Question1().Name)})
				packed, err := resp.Pack()
				if err != nil {
					return
				}
				resps = append(resps, packed)
			}
			var out []byte
			for i := len(resps) - 1; i >= 0; i-- {
				var err error
				if out, err = dnswire.AppendTCP(out, resps[i]); err != nil {
					return
				}
			}
			if _, err := conn.Write(out); err != nil {
				return
			}
		}
	})
}

func TestMuxBatchReversedResponses(t *testing.T) {
	const batch = 8
	w := newWorld()
	w.JitterFrac = 0
	serveMuxReversed(w, batch)
	c := New(w, clientIP)
	conn, err := c.DialTCP(resolverIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	m := conn.Pipeline(batch)
	if m.MaxInFlight() != batch {
		t.Fatalf("MaxInFlight = %d, want %d", m.MaxInFlight(), batch)
	}

	names := make([]string, batch)
	for i := range names {
		names[i] = fmt.Sprintf("q%d.example.com", i)
	}
	before := conn.Elapsed()
	results, err := m.Batch(context.Background(), names, dnswire.TypeA, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := conn.Elapsed() - before
	if len(results) != batch {
		t.Fatalf("got %d results, want %d", len(results), batch)
	}
	for i, r := range results {
		a, ok := r.FirstA()
		if !ok || a != muxEchoAddr(names[i]) {
			t.Errorf("query %d: answer %v, want %v", i, a, muxEchoAddr(names[i]))
		}
		// All queries leave in one segment and all responses arrive in one
		// coalesced segment, so every per-query virtual latency equals the
		// whole batch round trip.
		if r.Latency != total {
			t.Errorf("query %d: latency %v, want batch total %v", i, r.Latency, total)
		}
	}
	if total <= 0 {
		t.Error("batch consumed no virtual time")
	}
}

func TestMuxConcurrentExchange(t *testing.T) {
	const n = 16
	w := newWorld()
	// Server batches responses 4 at a time, reversed, so completions really
	// are out of order relative to issue order.
	serveMuxReversed(w, 4)
	c := New(w, clientIP)
	conn, err := c.DialTCP(resolverIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Pipeline(n)

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("q%d.example.com", i)
			res, err := conn.QueryContext(context.Background(), name, dnswire.TypeA)
			if err != nil {
				errs[i] = err
				return
			}
			if a, ok := res.FirstA(); !ok || a != muxEchoAddr(name) {
				errs[i] = fmt.Errorf("answer %v, want %v", a, muxEchoAddr(name))
			}
			if res.Latency <= 0 {
				errs[i] = fmt.Errorf("latency %v, want > 0", res.Latency)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("query %d: %v", i, err)
		}
	}
}

func TestMuxFailsAllInFlightOnStreamDeath(t *testing.T) {
	const n = 4
	w := newWorld()
	// The server swallows n queries and closes without answering: every
	// in-flight query must fail with the same stream error.
	w.RegisterStream(resolverIP, 53, func(conn *netsim.Conn) {
		for i := 0; i < n; i++ {
			if _, err := dnswire.ReadTCP(conn); err != nil {
				break
			}
		}
		conn.Close()
	})
	c := New(w, clientIP)
	conn, err := c.DialTCP(resolverIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Pipeline(n)

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = conn.QueryContext(context.Background(), fmt.Sprintf("q%d.example.com", i), dnswire.TypeA)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("query %d succeeded against a dead stream", i)
		}
	}
	// The session is dead: later queries fail immediately too.
	if _, err := conn.QueryContext(context.Background(), "late.example.com", dnswire.TypeA); err == nil {
		t.Error("query on dead session succeeded")
	}
}

func TestMuxExchangeCancellation(t *testing.T) {
	w := newWorld()
	// A server that never answers.
	w.RegisterStream(resolverIP, 53, func(conn *netsim.Conn) {
		for {
			if _, err := dnswire.ReadTCP(conn); err != nil {
				conn.Close()
				return
			}
		}
	})
	c := New(w, clientIP)
	conn, err := c.DialTCP(resolverIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	m := conn.Pipeline(2)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := m.Exchange(ctx, "q0.example.com", dnswire.TypeA)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled exchange did not return")
	}
	// The abandoned slot must not wedge the session: the in-flight
	// semaphore slot was released on cancellation.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if _, err := m.Exchange(ctx2, "q1.example.com", dnswire.TypeA); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("second exchange err = %v, want deadline exceeded (server never answers)", err)
	}
}

func TestMuxClosedSessionError(t *testing.T) {
	w := newWorld()
	serveTCPFixed(w)
	c := New(w, clientIP)
	conn, err := c.DialTCP(resolverIP)
	if err != nil {
		t.Fatal(err)
	}
	conn.Pipeline(4)
	conn.Close()
	if _, err := conn.QueryContext(context.Background(), "x.example.com", dnswire.TypeA); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestDeadlineZeroTimeoutMeansNoDeadline(t *testing.T) {
	if d := Deadline(context.Background(), 0); !d.IsZero() {
		t.Errorf("Deadline(bg, 0) = %v, want zero time", d)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
	defer cancel()
	cd, _ := ctx.Deadline()
	if d := Deadline(ctx, 0); !d.Equal(cd) {
		t.Errorf("Deadline(ctx, 0) = %v, want ctx deadline %v", d, cd)
	}
	if d := Deadline(context.Background(), time.Second); d.IsZero() {
		t.Error("Deadline(bg, 1s) returned zero time")
	}
}
