// Package runner is the parallel execution engine for the measurement
// pipeline: a bounded worker pool that shards an indexed workload across N
// goroutines and merges results deterministically.
//
// Determinism contract: Map(workers, n, fn) returns exactly
// [fn(0), fn(1), ..., fn(n-1)] — each result is stored at its input index,
// so the merged slice is identical for every worker count, including
// workers=1. Callers keep reports bit-for-bit reproducible by (a) deriving
// any randomness inside fn(i) from the task's own identity (index, address,
// vantage key) rather than from call order, and (b) reducing the returned
// slice in index order. The pool itself adds no ordering of its own: work
// items are handed out through a single atomic counter (natural
// backpressure — a worker takes a new index only when it finishes the
// previous one) and the pool always joins every worker before returning, so
// no goroutines outlive the call.
//
// Telemetry: when the context carries an obs.Recorder, MapCtx instruments
// the pool — task counts and pool-wide virtual busy time (deterministic),
// plus worker counts, in-flight high-water marks and per-worker task/busy
// shares (volatile; their split across workers depends on scheduling).
// Name the pool with obs.WithPool before calling. Map stays uninstrumented:
// it has no context to carry a recorder.
package runner

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"

	"dnsencryption.info/doe/internal/obs"
)

// Map runs fn(i) for every i in [0, n) on at most `workers` goroutines and
// returns the results in input order. workers <= 1 degenerates to a serial
// loop on the calling goroutine; workers is clamped to n so short workloads
// never spawn idle goroutines. Map returns only after every worker has
// exited.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// poolMeters carries the per-pool instruments one MapCtx call records
// into; the zero value (telemetry off) is inert.
type poolMeters struct {
	enabled     bool
	pool        string
	reg         *obs.Registry
	tasks       *obs.Counter // deterministic
	busyTotal   *obs.Counter // deterministic
	inflightMax *obs.Gauge   // volatile
	inflight    atomic.Int64
}

func newPoolMeters(ctx context.Context, workers int) *poolMeters {
	reg := obs.Metrics(ctx)
	if reg == nil {
		return &poolMeters{}
	}
	pool := obs.PoolName(ctx, "pool")
	m := &poolMeters{
		enabled:     true,
		pool:        pool,
		reg:         reg,
		tasks:       reg.Counter("runner_tasks_total", "pool", pool),
		busyTotal:   reg.Counter("runner_virtual_busy_us_total", "pool", pool),
		inflightMax: reg.VolatileGauge("runner_inflight_max", "pool", pool),
	}
	// Max, not Set: one pool name may serve several MapCtx calls (both
	// campaign platforms share "campaign"), so keep the high-water mark.
	reg.VolatileGauge("runner_workers", "pool", pool).Max(int64(workers))
	return m
}

// workerCtx attaches the per-worker busy-time sink and task counter.
func (m *poolMeters) workerCtx(ctx context.Context, worker int) (context.Context, *obs.Counter) {
	if !m.enabled {
		return ctx, nil
	}
	w := strconv.Itoa(worker)
	busy := m.reg.VolatileCounter("runner_worker_virtual_busy_us", "pool", m.pool, "worker", w)
	tasks := m.reg.VolatileCounter("runner_worker_tasks", "pool", m.pool, "worker", w)
	return obs.WithWorkerSink(ctx, m.busyTotal, busy), tasks
}

func (m *poolMeters) taskStart(workerTasks *obs.Counter) {
	if !m.enabled {
		return
	}
	m.tasks.Add(1)
	workerTasks.Add(1)
	m.inflightMax.Max(m.inflight.Add(1))
}

func (m *poolMeters) taskEnd() {
	if !m.enabled {
		return
	}
	m.inflight.Add(-1)
}

// MapCtx is Map with cooperative cancellation: once ctx is done, workers
// stop taking new indices and MapCtx returns ctx.Err() alongside the
// partial results (indices that never ran hold T's zero value). In-flight
// fn calls are not interrupted — fn observes ctx itself if it wants
// mid-task cancellation — but the pool still joins every worker before
// returning, so shutdown leaks no goroutines.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) T) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		meters := newPoolMeters(ctx, 1)
		sctx, workerTasks := meters.workerCtx(ctx, 0)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			meters.taskStart(workerTasks)
			out[i] = fn(sctx, i)
			meters.taskEnd()
		}
		return out, ctx.Err()
	}
	meters := newPoolMeters(ctx, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx, workerTasks := meters.workerCtx(ctx, w)
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				meters.taskStart(workerTasks)
				out[i] = fn(wctx, i)
				meters.taskEnd()
			}
		}(w)
	}
	wg.Wait()
	return out, ctx.Err()
}
