// Package runner is the parallel execution engine for the measurement
// pipeline: a bounded worker pool that shards an indexed workload across N
// goroutines and merges results deterministically.
//
// Determinism contract: Map(workers, n, fn) returns exactly
// [fn(0), fn(1), ..., fn(n-1)] — each result is stored at its input index,
// so the merged slice is identical for every worker count, including
// workers=1. Callers keep reports bit-for-bit reproducible by (a) deriving
// any randomness inside fn(i) from the task's own identity (index, address,
// vantage key) rather than from call order, and (b) reducing the returned
// slice in index order. The pool itself adds no ordering of its own: work
// items are handed out through a single atomic counter (natural
// backpressure — a worker takes a new index only when it finishes the
// previous one) and the pool always joins every worker before returning, so
// no goroutines outlive the call.
//
// Telemetry: when the context carries an obs.Recorder, MapCtx instruments
// the pool — task counts and pool-wide virtual busy time (deterministic),
// plus worker counts, in-flight high-water marks and per-worker task/busy
// shares (volatile; their split across workers depends on scheduling).
// Each worker goroutine records into its own shard registry (installed via
// obs.WithMetricsRegistry, so instrumented code deep in the task sees it
// through obs.Metrics) and the shards fold into the study registry with
// Registry.Merge after the pool joins — the same positional-merge
// discipline as results, which removes cross-worker contention on hot
// counters without changing any merged total. MapCtx also feeds the
// recorder's progress Phase named after the pool (done/total task counts
// for the /progress endpoint). Name the pool with obs.WithPool before
// calling. Map stays uninstrumented: it has no context to carry a
// recorder.
package runner

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"

	"dnsencryption.info/doe/internal/obs"
)

// Map runs fn(i) for every i in [0, n) on at most `workers` goroutines and
// returns the results in input order. workers <= 1 degenerates to a serial
// loop on the calling goroutine; workers is clamped to n so short workloads
// never spawn idle goroutines. Map returns only after every worker has
// exited.
func Map[T any](workers, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// poolMeters carries the pool-wide instruments one MapCtx call records
// into; the zero value (telemetry off) is inert. The in-flight ledger and
// worker-count gauge stay on the parent registry — they are inherently
// cross-worker — while everything a task records goes through a worker's
// shard registry (workerMeters) and folds back at join.
type poolMeters struct {
	enabled     bool
	pool        string
	parent      *obs.Registry
	phase       *obs.Phase // live done/total progress for /progress
	inflightMax *obs.Gauge // volatile
	inflight    atomic.Int64
	shards      []*obs.Registry // one per worker goroutine; folded at join
}

func newPoolMeters(ctx context.Context, workers, n int) *poolMeters {
	reg := obs.Metrics(ctx)
	if reg == nil {
		return &poolMeters{}
	}
	pool := obs.PoolName(ctx, "pool")
	m := &poolMeters{
		enabled:     true,
		pool:        pool,
		parent:      reg,
		phase:       obs.FromContext(ctx).Phase(pool),
		inflightMax: reg.VolatileGauge("runner_inflight_max", "pool", pool),
	}
	m.phase.AddTotal(int64(n))
	// Max, not Set: one pool name may serve several MapCtx calls (both
	// campaign platforms share "campaign"), so keep the high-water mark.
	reg.VolatileGauge("runner_workers", "pool", pool).Max(int64(workers))
	return m
}

// workerMeters is one worker goroutine's recording surface: a shard
// registry all task-side metrics land in, contention-free, plus the
// counter handles resolved once per worker. The serial path records
// straight into the parent registry (shard == parent, nothing to fold).
type workerMeters struct {
	shard       *obs.Registry
	tasks       *obs.Counter // deterministic: pool-wide task count
	workerTasks *obs.Counter // volatile: this worker's share
}

// workerCtx builds the per-worker context: a shard registry override (so
// obs.Metrics(ctx) inside the task resolves shard-local instruments), the
// busy-time sink, and the per-worker task counter. Deterministic families
// (runner_tasks_total, runner_virtual_busy_us_total) are recorded in the
// shard too; counter merges are plain addition, so the folded totals are
// identical to what shared counters would have accumulated.
func (m *poolMeters) workerCtx(ctx context.Context, worker int, sharded bool) (context.Context, *workerMeters) {
	if !m.enabled {
		return ctx, nil
	}
	reg := m.parent
	if sharded {
		reg = obs.NewRegistry()
		m.shards[worker] = reg
		ctx = obs.WithMetricsRegistry(ctx, reg)
	}
	w := strconv.Itoa(worker)
	total := reg.Counter("runner_virtual_busy_us_total", "pool", m.pool)
	busy := reg.VolatileCounter("runner_worker_virtual_busy_us", "pool", m.pool, "worker", w)
	wm := &workerMeters{
		shard:       reg,
		tasks:       reg.Counter("runner_tasks_total", "pool", m.pool),
		workerTasks: reg.VolatileCounter("runner_worker_tasks", "pool", m.pool, "worker", w),
	}
	return obs.WithWorkerSink(ctx, total, busy), wm
}

func (m *poolMeters) taskStart(wm *workerMeters) {
	if !m.enabled {
		return
	}
	wm.tasks.Add(1)
	wm.workerTasks.Add(1)
	m.inflightMax.Max(m.inflight.Add(1))
}

func (m *poolMeters) taskEnd() {
	if !m.enabled {
		return
	}
	m.inflight.Add(-1)
	m.phase.Done(1)
}

// fold merges every worker shard into the parent registry, in worker
// order. Merge is associative and commutative, so the order is a
// convention (matching the positional result merge), not a correctness
// requirement; any fold tree yields byte-identical snapshots.
func (m *poolMeters) fold() error {
	if !m.enabled {
		return nil
	}
	var errs []error
	for _, shard := range m.shards {
		if shard == nil {
			continue
		}
		if err := m.parent.Merge(shard); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// MapCtx is Map with cooperative cancellation: once ctx is done, workers
// stop taking new indices and MapCtx returns ctx.Err() alongside the
// partial results (indices that never ran hold T's zero value). In-flight
// fn calls are not interrupted — fn observes ctx itself if it wants
// mid-task cancellation — but the pool still joins every worker before
// returning, so shutdown leaks no goroutines.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) T) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		meters := newPoolMeters(ctx, 1, n)
		sctx, wm := meters.workerCtx(ctx, 0, false)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			meters.taskStart(wm)
			out[i] = fn(sctx, i)
			meters.taskEnd()
		}
		return out, ctx.Err()
	}
	meters := newPoolMeters(ctx, workers, n)
	meters.shards = make([]*obs.Registry, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx, wm := meters.workerCtx(ctx, w, true)
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				meters.taskStart(wm)
				out[i] = fn(wctx, i)
				meters.taskEnd()
			}
		}(w)
	}
	wg.Wait()
	// Fold worker shards into the study registry only after every worker
	// has exited — the positional merge point, same discipline as out.
	if err := meters.fold(); err != nil {
		return out, errors.Join(ctx.Err(), err)
	}
	return out, ctx.Err()
}
