package doq

import (
	"context"
	"crypto/x509"
	"errors"
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
)

var (
	clientIP = netip.MustParseAddr("10.1.0.2")
	doqIP    = netip.MustParseAddr("192.0.2.100")
	answerIP = netip.MustParseAddr("203.0.113.1")
)

type fixture struct {
	world *netsim.World
	ca    *certs.CA
	zone  *dnsserver.Zone
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	w := netsim.NewWorld(11)
	w.Geo.Register(netip.MustParsePrefix("10.1.0.0/16"), geo.Location{Country: "US"})
	w.Geo.Register(netip.MustParsePrefix("192.0.2.0/24"), geo.Location{Country: "NL"})
	ca, err := certs.NewCA("DoE Root", true)
	if err != nil {
		t.Fatal(err)
	}
	z := dnsserver.NewZone("measure.example.org")
	z.WildcardA = answerIP
	return &fixture{world: w, ca: ca, zone: z}
}

func (f *fixture) serveDoQ(t *testing.T, leaf *certs.Leaf) *Server {
	t.Helper()
	return Serve(f.world, doqIP, leaf, f.zone, 0)
}

func (f *fixture) validLeaf(t *testing.T) *certs.Leaf {
	t.Helper()
	leaf, err := f.ca.Issue(certs.LeafOptions{CommonName: "dns.provider.example", IPs: []netip.Addr{doqIP}})
	if err != nil {
		t.Fatal(err)
	}
	return leaf
}

func TestStrictQueryAgainstValidServer(t *testing.T) {
	f := newFixture(t)
	f.serveDoQ(t, f.validLeaf(t))
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), dot.Strict)
	conn, err := c.Dial(doqIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Resumed() {
		t.Error("fresh dial reported as resumed")
	}
	if conn.SetupLatency() <= 0 {
		t.Error("1-RTT handshake setup not accounted")
	}
	if conn.VerifyError() != nil {
		t.Errorf("verify error: %v", conn.VerifyError())
	}
	if len(conn.PeerCertificates()) == 0 {
		t.Error("no peer certificates recorded")
	}
	res, err := conn.Query("probe-1.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := res.FirstA(); !ok || a != answerIP {
		t.Errorf("answer = %v", res.Msg.Answers)
	}
	if res.Latency <= 0 {
		t.Error("latency not accounted")
	}
	if res.Msg.ID != 0 {
		t.Errorf("response message ID = %d, want 0 (RFC 9250 §4.2.1)", res.Msg.ID)
	}
}

func TestStrictRejectsSelfSigned(t *testing.T) {
	f := newFixture(t)
	leaf, err := certs.SelfSigned(certs.LeafOptions{CommonName: "Perfect Privacy"})
	if err != nil {
		t.Fatal(err)
	}
	f.serveDoQ(t, leaf)
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), dot.Strict)
	_, err = c.Query(doqIP, "probe.measure.example.org", dnswire.TypeA)
	if !errors.Is(err, ErrAuthFailed) {
		t.Errorf("err = %v, want ErrAuthFailed", err)
	}
	var uae x509.UnknownAuthorityError
	if !errors.As(err, &uae) {
		t.Errorf("err = %v, want x509.UnknownAuthorityError via errors.As", err)
	}
}

func TestOpportunisticProceedsDespiteInvalidCert(t *testing.T) {
	f := newFixture(t)
	leaf, err := certs.SelfSigned(certs.LeafOptions{CommonName: "qq.dog"})
	if err != nil {
		t.Fatal(err)
	}
	f.serveDoQ(t, leaf)
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), dot.Opportunistic)
	conn, err := c.Dial(doqIP)
	if err != nil {
		t.Fatalf("opportunistic dial failed: %v", err)
	}
	defer conn.Close()
	if conn.VerifyError() == nil {
		t.Error("verification unexpectedly succeeded for self-signed cert")
	}
	res, err := conn.Query("probe.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := res.FirstA(); !ok || a != answerIP {
		t.Errorf("answer = %v", res.Msg.Answers)
	}
}

// The QUIC handshake costs one round trip against DoT's TCP+TLS two: over
// the same simulated path, DoQ setup must come in strictly cheaper.
func TestSetupCheaperThanDoT(t *testing.T) {
	f := newFixture(t)
	leaf := f.validLeaf(t)
	f.serveDoQ(t, leaf)
	dot.Serve(f.world, doqIP, leaf, f.zone, 0)

	qc := NewClient(f.world, clientIP, certs.Pool(f.ca), dot.Strict)
	qconn, err := qc.Dial(doqIP)
	if err != nil {
		t.Fatal(err)
	}
	defer qconn.Close()

	tc := dot.NewClient(f.world, clientIP, certs.Pool(f.ca), dot.Strict)
	tconn, err := tc.Dial(doqIP)
	if err != nil {
		t.Fatal(err)
	}
	defer tconn.Close()

	if qconn.SetupLatency() >= tconn.SetupLatency() {
		t.Errorf("DoQ setup %v not cheaper than DoT setup %v", qconn.SetupLatency(), tconn.SetupLatency())
	}
}

func TestZeroRTTResumption(t *testing.T) {
	f := newFixture(t)
	f.serveDoQ(t, f.validLeaf(t))
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), dot.Strict)
	c.SessionCache = NewSessionCache()

	first, err := c.Dial(doqIP)
	if err != nil {
		t.Fatal(err)
	}
	if first.Resumed() {
		t.Fatal("first dial resumed with an empty cache")
	}
	first.Close()

	second, err := c.Dial(doqIP)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if !second.Resumed() {
		t.Fatal("second dial did not resume")
	}
	if second.SetupLatency() != 0 {
		t.Errorf("0-RTT setup = %v, want 0", second.SetupLatency())
	}
	if len(second.PeerCertificates()) == 0 {
		t.Error("resumed session lost the cached certificate chain")
	}
	res, err := second.Query("probe.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := res.FirstA(); !ok || a != answerIP {
		t.Errorf("answer over 0-RTT = %v", res.Msg.Answers)
	}
	// The resumed session's whole-lifetime cost is one query flight; the
	// fresh session paid a handshake on top of nothing.
	if second.Elapsed() >= first.Elapsed()+res.Latency {
		t.Errorf("0-RTT session elapsed %v did not undercut 1-RTT handshake %v", second.Elapsed(), first.Elapsed())
	}
}

// A strict client must not ride a ticket minted by an opportunistic
// session whose chain never verified.
func TestStrictDialIgnoresUnverifiedTicket(t *testing.T) {
	f := newFixture(t)
	leaf, err := certs.SelfSigned(certs.LeafOptions{CommonName: "qq.dog"})
	if err != nil {
		t.Fatal(err)
	}
	f.serveDoQ(t, leaf)
	cache := NewSessionCache()

	oc := NewClient(f.world, clientIP, certs.Pool(f.ca), dot.Opportunistic)
	oc.SessionCache = cache
	conn, err := oc.Dial(doqIP)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()

	sc := NewClient(f.world, clientIP, certs.Pool(f.ca), dot.Strict)
	sc.SessionCache = cache
	if _, err := sc.Dial(doqIP); !errors.Is(err, ErrAuthFailed) {
		t.Errorf("strict dial over unverified ticket: err = %v, want ErrAuthFailed", err)
	}
}

// Raw-wire checks of the server's RFC 9250 enforcement.
func TestServerEnforcesProtocol(t *testing.T) {
	f := newFixture(t)
	f.serveDoQ(t, f.validLeaf(t))
	ticket := ticketFor(doqIP)
	scid := []byte{1, 2, 3, 4, 5, 6, 7, 8}

	zeroRTT := func(frames ...dnswire.QUICFrame) []byte {
		t.Helper()
		pkt, err := dnswire.AppendQUICHeader(nil, dnswire.QUICHeader{
			Type: dnswire.QUICZeroRTT, Version: dnswire.QUICVersion, DCID: scid, SCID: scid,
		})
		if err != nil {
			t.Fatal(err)
		}
		hello := appendClientHello(nil, clientHello{alpn: helloALPN, ticket: ticket[:]})
		if pkt, err = dnswire.AppendQUICFrame(pkt, dnswire.QUICFrame{Type: dnswire.QUICFrameCrypto, Data: hello}); err != nil {
			t.Fatal(err)
		}
		for _, fr := range frames {
			if pkt, err = dnswire.AppendQUICFrame(pkt, fr); err != nil {
				t.Fatal(err)
			}
		}
		return pkt
	}
	framedQuery := func(id uint16) []byte {
		t.Helper()
		q := dnswire.NewQuery(id, "probe.measure.example.org", dnswire.TypeA)
		framed, err := q.AppendPackTCP(nil)
		if err != nil {
			t.Fatal(err)
		}
		return framed
	}
	wantClose := func(t *testing.T, resp []byte, code uint64) {
		t.Helper()
		_, n, err := dnswire.ParseQUICHeader(resp)
		if err != nil {
			t.Fatal(err)
		}
		fr, _, err := dnswire.ParseQUICFrame(resp[n:])
		if err != nil {
			t.Fatal(err)
		}
		if fr.Type != dnswire.QUICFrameConnCloseApp || fr.ErrorCode != code {
			t.Errorf("frame = %+v, want CONNECTION_CLOSE(app) code %d", fr, code)
		}
	}

	t.Run("NonZeroMessageID", func(t *testing.T) {
		pkt := zeroRTT(dnswire.QUICFrame{Type: dnswire.QUICFrameStream, StreamID: 0, Fin: true, Data: framedQuery(7)})
		resp, _, err := f.world.Exchange(clientIP, doqIP, Port, pkt)
		if err != nil {
			t.Fatal(err)
		}
		wantClose(t, resp, ProtocolError)
	})
	t.Run("ServerInitiatedStreamID", func(t *testing.T) {
		pkt := zeroRTT(dnswire.QUICFrame{Type: dnswire.QUICFrameStream, StreamID: 3, Fin: true, Data: framedQuery(0)})
		resp, _, err := f.world.Exchange(clientIP, doqIP, Port, pkt)
		if err != nil {
			t.Fatal(err)
		}
		wantClose(t, resp, ProtocolError)
	})
	t.Run("BadLengthPrefix", func(t *testing.T) {
		pkt := zeroRTT(dnswire.QUICFrame{Type: dnswire.QUICFrameStream, StreamID: 0, Fin: true, Data: []byte{0xff, 0xff, 1}})
		resp, _, err := f.world.Exchange(clientIP, doqIP, Port, pkt)
		if err != nil {
			t.Fatal(err)
		}
		wantClose(t, resp, ProtocolError)
	})
	t.Run("BadTicket", func(t *testing.T) {
		pkt, err := dnswire.AppendQUICHeader(nil, dnswire.QUICHeader{
			Type: dnswire.QUICZeroRTT, Version: dnswire.QUICVersion, DCID: scid, SCID: scid,
		})
		if err != nil {
			t.Fatal(err)
		}
		hello := appendClientHello(nil, clientHello{alpn: helloALPN, ticket: []byte("stale-ticket")})
		if pkt, err = dnswire.AppendQUICFrame(pkt, dnswire.QUICFrame{Type: dnswire.QUICFrameCrypto, Data: hello}); err != nil {
			t.Fatal(err)
		}
		resp, _, err := f.world.Exchange(clientIP, doqIP, Port, pkt)
		if err != nil {
			t.Fatal(err)
		}
		wantClose(t, resp, ProtocolError)
	})
	t.Run("UnknownConnection", func(t *testing.T) {
		pkt, err := dnswire.AppendQUICHeader(nil, dnswire.QUICHeader{Type: dnswire.QUICOneRTT, DCID: scid})
		if err != nil {
			t.Fatal(err)
		}
		if pkt, err = dnswire.AppendQUICFrame(pkt, dnswire.QUICFrame{Type: dnswire.QUICFramePing}); err != nil {
			t.Fatal(err)
		}
		resp, _, err := f.world.Exchange(clientIP, doqIP, Port, pkt)
		if err != nil {
			t.Fatal(err)
		}
		_, n, err := dnswire.ParseQUICHeader(resp)
		if err != nil {
			t.Fatal(err)
		}
		fr, _, err := dnswire.ParseQUICFrame(resp[n:])
		if err != nil {
			t.Fatal(err)
		}
		if fr.Type != dnswire.QUICFrameConnClose {
			t.Errorf("frame = %+v, want transport CONNECTION_CLOSE", fr)
		}
	})
}

func TestNotDoQServiceRefusesHandshake(t *testing.T) {
	f := newFixture(t)
	ServeNotDoQ(f.world, doqIP)
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), dot.Opportunistic)
	if _, err := c.Dial(doqIP); !errors.Is(err, ErrClosed) {
		t.Errorf("dial against not-DoQ service: err = %v, want ErrClosed", err)
	}
}

func TestBatchAmortizesRoundTrip(t *testing.T) {
	f := newFixture(t)
	f.serveDoQ(t, f.validLeaf(t))
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), dot.Strict)
	conn, err := c.Dial(doqIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	single, err := conn.Query("warmup.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}

	names := make([]string, 8)
	for i := range names {
		names[i] = "batch-" + string(rune('a'+i)) + ".measure.example.org"
	}
	out, err := conn.BatchContext(context.Background(), names, dnswire.TypeA, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(names) {
		t.Fatalf("batch returned %d results, want %d", len(out), len(names))
	}
	for i, res := range out {
		// Results must land in names order despite the server's
		// deterministic response-frame shuffle.
		if got := res.Msg.Question1().Name; got != dnswire.CanonicalName(names[i]) {
			t.Errorf("result %d answers %q, want %q", i, got, names[i])
		}
		if a, ok := res.FirstA(); !ok || a != answerIP {
			t.Errorf("result %d answer = %v", i, res.Msg.Answers)
		}
		if res.Latency >= single.Latency {
			t.Errorf("batched query latency %v not amortized below single %v", res.Latency, single.Latency)
		}
	}
}

// The satellite-mandated storm: 16 goroutines share one connection, each
// issuing queries on its own streams; the demux must route every response
// to the right caller under the race detector, and the virtual clock must
// land on the same total regardless of schedule.
func TestConcurrentStreamStorm(t *testing.T) {
	elapsedOnce := func(t *testing.T) time.Duration {
		f := newFixture(t)
		f.serveDoQ(t, f.validLeaf(t))
		c := NewClient(f.world, clientIP, certs.Pool(f.ca), dot.Strict)
		c.MaxInFlight = 16
		conn, err := c.Dial(doqIP)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()

		const goroutines = 16
		const perG = 8
		var wg sync.WaitGroup
		errs := make(chan error, goroutines*perG)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for q := 0; q < perG; q++ {
					name := "storm-" + string(rune('a'+g)) + "-" + string(rune('a'+q)) + ".measure.example.org"
					res, err := conn.Query(name, dnswire.TypeA)
					if err != nil {
						errs <- err
						return
					}
					if res.Msg.Question1().Name != dnswire.CanonicalName(name) {
						errs <- errors.New("demux cross-wired: got " + res.Msg.Question1().Name + " want " + name)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		return conn.Elapsed()
	}
	a := elapsedOnce(t)
	b := elapsedOnce(t)
	if a != b {
		t.Errorf("storm elapsed differs across runs: %v vs %v", a, b)
	}
}

// A mid-storm CONNECTION_CLOSE (the server forgets the connection, as a
// restart or population churn would) must fail every in-flight query with
// ErrClosed and leave the connection dead for later callers.
func TestMidStreamCloseFailsAllInFlight(t *testing.T) {
	f := newFixture(t)
	srv := f.serveDoQ(t, f.validLeaf(t))
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), dot.Strict)
	c.MaxInFlight = 16
	conn, err := c.Dial(doqIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	srv.Reset()

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, errs[g] = conn.Query("storm.measure.example.org", dnswire.TypeA)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Errorf("goroutine %d: err = %v, want ErrClosed", g, err)
		}
	}
	if _, err := conn.Query("after.measure.example.org", dnswire.TypeA); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close query: err = %v, want ErrClosed", err)
	}
}

// Resumption tickets are stateless, so a 0-RTT dial works even after the
// server forgot every connection — the churn-resilience the population
// model leans on.
func TestZeroRTTSurvivesServerReset(t *testing.T) {
	f := newFixture(t)
	srv := f.serveDoQ(t, f.validLeaf(t))
	c := NewClient(f.world, clientIP, certs.Pool(f.ca), dot.Strict)
	c.SessionCache = NewSessionCache()
	first, err := c.Dial(doqIP)
	if err != nil {
		t.Fatal(err)
	}
	first.Close()

	srv.Reset()

	conn, err := c.Dial(doqIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if !conn.Resumed() {
		t.Fatal("dial after reset did not resume")
	}
	res, err := conn.Query("probe.measure.example.org", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := res.FirstA(); !ok || a != answerIP {
		t.Errorf("answer = %v", res.Msg.Answers)
	}
}
