package lint_test

import (
	"testing"
	"time"

	"dnsencryption.info/doe/internal/lint"
)

// TestRepositoryIsClean runs the full suite over this module, the same as
// `go run ./cmd/doelint ./...`. Being part of `go test ./...` makes the
// lint gate part of the tier-1 verify path: a new violation anywhere in
// the module fails this test with the finding's position and message.
func TestRepositoryIsClean(t *testing.T) {
	start := time.Now()
	findings, err := lint.Run("../..", nil, lint.DefaultConfig())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("lint.Run on repository: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the finding or add a justified //doelint:allow directive (see internal/lint/doc.go)")
	}

	// Runtime budget: the interprocedural suite must stay cheap enough to
	// sit on the tier-1 path. Summaries and the fact cache exist precisely
	// so this does not creep; 5s leaves ~10x headroom on a cold CI worker.
	const budget = 5 * time.Second
	if elapsed > budget {
		t.Errorf("full-module lint took %v, over the %v budget", elapsed, budget)
	} else {
		t.Logf("full-module lint: %v (budget %v)", elapsed, budget)
	}
}

// TestBaselinePolicy pins the repository policy: the committed baseline
// stays empty. Findings are fixed or carry a justified directive; the
// baseline file exists only as a ratchet for extraordinary transitions.
func TestBaselinePolicy(t *testing.T) {
	b, err := lint.LoadBaseline("../../.doelint-baseline.json")
	if err != nil {
		t.Fatalf("committed baseline: %v", err)
	}
	if len(b.Entries) != 0 {
		t.Errorf("committed baseline carries %d entries; repository policy is an empty baseline", len(b.Entries))
	}
}
