package dnscrypt

import (
	"crypto/ed25519"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"

	"dnsencryption.info/doe/internal/netsim"
)

// Stamp is a parsed DNS stamp (the "sdns://" URIs through which DNSCrypt
// and DoH servers are distributed in practice — e.g. in the public resolver
// lists the paper mines for §3).
type Stamp struct {
	Protocol StampProtocol
	// Props are the advertised properties (DNSSEC=1, NoLogs=2, NoFilter=4).
	Props uint64
	// Addr is the server address (with optional port).
	Addr string
	// ProviderPK is the provider's Ed25519 public key (DNSCrypt stamps).
	ProviderPK []byte
	// ProviderName is the DNSCrypt provider name.
	ProviderName string
	// Host and Path locate a DoH endpoint (DoH stamps).
	Host string
	Path string
}

// StampProtocol identifies the stamped protocol.
type StampProtocol byte

// Stamp protocol identifiers (per the DNS stamps specification).
const (
	StampDNSCrypt StampProtocol = 0x01
	StampDoH      StampProtocol = 0x02
)

// Stamp property bits.
const (
	PropDNSSEC   uint64 = 1 << 0
	PropNoLogs   uint64 = 1 << 1
	PropNoFilter uint64 = 1 << 2
)

// ErrBadStamp is returned for malformed stamps.
var ErrBadStamp = errors.New("dnscrypt: malformed DNS stamp")

const stampPrefix = "sdns://"

// String encodes the stamp as an sdns:// URI.
func (s *Stamp) String() string {
	var raw []byte
	raw = append(raw, byte(s.Protocol))
	raw = binary.LittleEndian.AppendUint64(raw, s.Props)
	appendLP := func(b []byte) {
		raw = append(raw, byte(len(b)))
		raw = append(raw, b...)
	}
	appendLP([]byte(s.Addr))
	switch s.Protocol {
	case StampDNSCrypt:
		appendLP(s.ProviderPK)
		appendLP([]byte(s.ProviderName))
	case StampDoH:
		appendLP(nil) // no certificate hashes in the study
		appendLP([]byte(s.Host))
		appendLP([]byte(s.Path))
	}
	return stampPrefix + base64.RawURLEncoding.EncodeToString(raw)
}

// ParseStamp decodes an sdns:// URI.
func ParseStamp(uri string) (*Stamp, error) {
	if !strings.HasPrefix(uri, stampPrefix) {
		return nil, fmt.Errorf("%w: missing sdns:// prefix", ErrBadStamp)
	}
	raw, err := base64.RawURLEncoding.DecodeString(uri[len(stampPrefix):])
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadStamp, err)
	}
	if len(raw) < 9 {
		return nil, ErrBadStamp
	}
	s := &Stamp{
		Protocol: StampProtocol(raw[0]),
		Props:    binary.LittleEndian.Uint64(raw[1:9]),
	}
	rest := raw[9:]
	next := func() ([]byte, error) {
		if len(rest) < 1 {
			return nil, ErrBadStamp
		}
		n := int(rest[0])
		if len(rest) < 1+n {
			return nil, ErrBadStamp
		}
		field := rest[1 : 1+n]
		rest = rest[1+n:]
		return field, nil
	}
	addr, err := next()
	if err != nil {
		return nil, err
	}
	s.Addr = string(addr)
	switch s.Protocol {
	case StampDNSCrypt:
		pk, err := next()
		if err != nil {
			return nil, err
		}
		if len(pk) != ed25519.PublicKeySize {
			return nil, fmt.Errorf("%w: provider key of %d bytes", ErrBadStamp, len(pk))
		}
		s.ProviderPK = pk
		name, err := next()
		if err != nil {
			return nil, err
		}
		s.ProviderName = string(name)
	case StampDoH:
		if _, err := next(); err != nil { // certificate hashes, unused
			return nil, err
		}
		host, err := next()
		if err != nil {
			return nil, err
		}
		s.Host = string(host)
		path, err := next()
		if err != nil {
			return nil, err
		}
		s.Path = string(path)
	default:
		return nil, fmt.Errorf("%w: unknown protocol 0x%02x", ErrBadStamp, raw[0])
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadStamp)
	}
	return s, nil
}

// NewDNSCryptStamp builds the stamp for a server deployment.
func NewDNSCryptStamp(addr netip.Addr, providerName string, providerPK ed25519.PublicKey, props uint64) *Stamp {
	return &Stamp{
		Protocol:     StampDNSCrypt,
		Props:        props,
		Addr:         addr.String(),
		ProviderPK:   append([]byte(nil), providerPK...),
		ProviderName: providerName,
	}
}

// ClientFromStamp constructs a Client configured by a DNSCrypt stamp.
func ClientFromStamp(w *netsim.World, from netip.Addr, stamp *Stamp) (*Client, netip.Addr, error) {
	if stamp.Protocol != StampDNSCrypt {
		return nil, netip.Addr{}, fmt.Errorf("dnscrypt: stamp protocol 0x%02x is not DNSCrypt", byte(stamp.Protocol))
	}
	addrStr := stamp.Addr
	if i := strings.LastIndexByte(addrStr, ':'); i > 0 && !strings.Contains(addrStr, "]") {
		addrStr = addrStr[:i]
	}
	addr, err := netip.ParseAddr(addrStr)
	if err != nil {
		return nil, netip.Addr{}, fmt.Errorf("dnscrypt: stamp address %q: %w", stamp.Addr, err)
	}
	c, err := NewClient(w, from, stamp.ProviderName, ed25519.PublicKey(stamp.ProviderPK))
	if err != nil {
		return nil, netip.Addr{}, err
	}
	return c, addr, nil
}
