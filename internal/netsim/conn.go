// Package netsim simulates the Internet the study measures: IPv4 hosts
// offering stream and datagram services, a per-country latency model, and
// the in-path middleboxes the paper encounters (censorship, TLS
// interception, devices squatting on resolver addresses).
//
// Connections are in-memory full-duplex pipes over which real protocol
// stacks run (crypto/tls handshakes, net/http servers). Latency is
// *virtual*: each endpoint of a connection carries its own virtual clock;
// a write is stamped with an arrival time of the sender's clock + RTT/2,
// and a read advances the reader's clock to the stamp of the data it
// consumes. A full TLS 1.3 handshake thus costs one virtual RTT, exactly
// as on the wire, while tests complete in microseconds of wall time — and
// because time flows strictly along the data, the accounting is
// independent of goroutine scheduling.
package netsim

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/bufpool"
)

// ErrDeadline is returned on reads past the configured deadline.
// It reports Timeout() == true like os.ErrDeadlineExceeded.
var ErrDeadline = &timeoutError{}

// ErrReset is returned on reads after an injected connection reset: the
// peer (or an in-path fault) sent an RST mid-stream. The connection closes
// both directions, so the remote handler unblocks with EOF.
var ErrReset = errors.New("netsim: connection reset by peer")

type timeoutError struct{}

func (*timeoutError) Error() string   { return "netsim: deadline exceeded" }
func (*timeoutError) Timeout() bool   { return true }
func (*timeoutError) Temporary() bool { return true }

// Addr is a net.Addr for simulated endpoints.
type Addr struct {
	IP   netip.Addr
	Port uint16
}

// Network implements net.Addr.
func (Addr) Network() string { return "sim" }

// String implements net.Addr.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// link is the immutable path state shared by the two endpoints of a
// connection. Jitter state lives on the per-direction buffers — see
// buffer.jitterRNG — and virtual time lives on per-endpoint clocks.
type link struct {
	rtt time.Duration
}

// clock is one endpoint's view of virtual time on a connection. Each
// endpoint owns its clock: a write stamps its arrival from the sender's
// clock, and a read advances only the reader's clock, to the stamp of the
// data it consumed. Virtual time thus flows strictly along the data. A
// single shared per-connection clock would instead let a concurrently
// scheduled reader and writer race on it — a reader advancing the clock
// between two of the peer's writes would inflate the second stamp — making
// pipelined and proxy-relayed latencies depend on goroutine scheduling.
type clock struct {
	mu  sync.Mutex
	now time.Duration
}

func (c *clock) get() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *clock) add(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// advance moves the clock forward to t (never backward).
func (c *clock) advance(t time.Duration) {
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
}

// segment is one write's worth of in-flight data. buf is the pooled buffer
// backing data, returned to bufpool once the segment is fully consumed;
// segments abandoned by a close simply fall to the garbage collector.
type segment struct {
	data    []byte
	readyAt time.Duration
	buf     *[]byte
}

// buffer is one direction of a connection: a queue of stamped segments with
// blocking reads and deadline support.
type buffer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	segs   []segment
	closed bool // writer closed: EOF after drain
	// closedAt is the virtual arrival time of the writer's FIN, when the
	// close came from the writing side (zero otherwise). EOF advances the
	// reader's clock to it, so server-side time charged after the last
	// write still reaches a client that waits for close.
	closedAt time.Duration
	deadline time.Time
	timer    *time.Timer
	link     *link

	// Fault injection: when cutAt > 0, the reader sees ErrReset in place
	// of the cutAt'th segment (1-based). Cuts count segments, not bytes —
	// segment counts are stable across TLS certificate size variation,
	// which keeps injected resets deterministic across study instances.
	cutAt       int
	delivered   int  // fully consumed segments
	headPartial bool // head segment partially consumed; finish it first
	reset       bool
	onReset     func() // called (unlocked) once, when the reset fires

	// wclock stamps writes (the sender's clock); rclock advances on reads
	// (the receiver's clock). See the clock type for why they differ.
	wclock *clock
	rclock *clock

	// jitterRNG/jitterFrac scale each half-RTT by a factor in
	// [1, 1+jitterFrac]. The sequence is per direction, drawn under b.mu
	// together with the segment enqueue, so the nth segment written in a
	// direction always gets the nth draw. A single link-wide sequence
	// would make stamps depend on goroutine scheduling: opposite-direction
	// writes race legitimately (a TLS 1.3 session-ticket write against the
	// client's first query), and whichever won the race would steal the
	// other's draw.
	jitterRNG  *rand.Rand
	jitterFrac float64
}

func newBuffer(l *link) *buffer {
	b := &buffer{link: l}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *buffer) write(p []byte) (int, error) {
	// Copy the caller's bytes into a pooled segment buffer: the copy is
	// mandatory (writers reuse p immediately), the pooling only recycles
	// where the copy lands, so wire bytes and segment counts are unchanged.
	buf := bufpool.Get(len(p))
	*buf = append(*buf, p...)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		bufpool.Put(buf)
		return 0, io.ErrClosedPipe
	}
	half := b.link.rtt / 2
	if b.jitterRNG != nil && b.jitterFrac > 0 {
		half = time.Duration(float64(half) * (1 + b.jitterRNG.Float64()*b.jitterFrac))
	}
	stamp := b.wclock.get() + half
	b.segs = append(b.segs, segment{data: *buf, readyAt: stamp, buf: buf}) //doelint:transfer -- owned by the segment queue; released as reads drain it
	b.cond.Broadcast()
	return len(p), nil
}

func (b *buffer) read(p []byte) (int, error) {
	b.mu.Lock()
	for len(b.segs) == 0 {
		if b.reset {
			b.mu.Unlock()
			return 0, ErrReset
		}
		if b.closed {
			b.rclock.advance(b.closedAt)
			b.mu.Unlock()
			return 0, io.EOF
		}
		//doelint:allow determinism -- deadlines guard against real hangs and are deliberately wall-clock
		if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
			b.mu.Unlock()
			return 0, ErrDeadline
		}
		b.cond.Wait()
	}
	if b.reset {
		b.mu.Unlock()
		return 0, ErrReset
	}
	if b.cutAt > 0 && !b.headPartial && b.delivered >= b.cutAt-1 {
		b.reset = true
		onReset := b.onReset
		b.cond.Broadcast()
		b.mu.Unlock()
		if onReset != nil {
			onReset()
		}
		return 0, ErrReset
	}
	seg := &b.segs[0]
	b.rclock.advance(seg.readyAt)
	n := copy(p, seg.data)
	seg.data = seg.data[n:]
	if len(seg.data) == 0 {
		buf := seg.buf
		b.segs = b.segs[1:]
		b.delivered++
		b.headPartial = false
		// The reader copied everything out, so the backing buffer can be
		// recycled for a future write.
		bufpool.Put(buf)
	} else {
		b.headPartial = true
	}
	b.mu.Unlock()
	return n, nil
}

// closeWrite marks the writer side closed. stamp, when nonzero, is the
// virtual arrival time of the FIN (the writer's clock + half RTT); pass
// zero when the close is the reader abandoning the direction, which
// carries no peer time.
func (b *buffer) closeWrite(stamp time.Duration) {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		b.closedAt = stamp
	}
	// A closed buffer's reads never block on the deadline (EOF wins), so
	// the wake-up timer has no job left. Dropping it matters: an armed
	// timer sits in the runtime timer heap holding the buffer — and its
	// jitter RNG — alive until it fires, which at campaign rates is a
	// per-connection leak that dwarfs the connection itself.
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *buffer) setDeadline(t time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.deadline = t
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if !t.IsZero() {
		d := time.Until(t) //doelint:allow determinism -- deadline timers run in real time by design
		if d < 0 {
			d = 0
		}
		//doelint:allow determinism -- deadline timers run in real time by design
		b.timer = time.AfterFunc(d, func() {
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		})
	}
	b.cond.Broadcast()
}

// Conn is one endpoint of a simulated connection. It implements net.Conn.
type Conn struct {
	recv   *buffer // data the peer wrote to us
	send   *buffer // data we write to the peer
	local  Addr
	remote Addr
	link   *link
	clk    *clock // this endpoint's virtual clock

	closeOnce sync.Once
}

// Pair creates a connected pair of Conns with the given round-trip time.
// The first return value is the "client" end. rng (optional) adds jitter:
// it seeds one independent draw sequence per direction (client->server
// first), so concurrent opposite-direction writes cannot reorder each
// other's draws.
func Pair(client, server Addr, rtt time.Duration, rng *rand.Rand, jitterFrac float64) (*Conn, *Conn) {
	l := &link{rtt: rtt}
	ab := newBuffer(l) // client -> server
	ba := newBuffer(l) // server -> client
	if rng != nil && jitterFrac > 0 {
		ab.jitterRNG = rand.New(rand.NewSource(rng.Int63()))
		ba.jitterRNG = rand.New(rand.NewSource(rng.Int63()))
		ab.jitterFrac = jitterFrac
		ba.jitterFrac = jitterFrac
	}
	cclk, sclk := &clock{}, &clock{}
	ab.wclock, ab.rclock = cclk, sclk
	ba.wclock, ba.rclock = sclk, cclk
	c := &Conn{recv: ba, send: ab, local: client, remote: server, link: l, clk: cclk}
	s := &Conn{recv: ab, send: ba, local: server, remote: client, link: l, clk: sclk}
	return c, s
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) { return c.recv.read(p) }

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) { return c.send.write(p) }

// Close implements net.Conn. It closes both directions: the send side
// carries a FIN stamped from this endpoint's clock, so a peer waiting for
// EOF inherits time charged after the last write; the receive side is
// merely abandoned and carries no stamp.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.send.closeWrite(c.clk.get() + c.link.rtt/2)
		c.recv.closeWrite(0)
	})
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn. Deadlines are real-time bounds used to
// abort stuck exchanges; virtual latency is tracked separately.
func (c *Conn) SetDeadline(t time.Time) error {
	c.recv.setDeadline(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.recv.setDeadline(t)
	return nil
}

// SetWriteDeadline implements net.Conn. Writes never block, so this is a
// no-op kept for interface completeness.
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }

// armReset arranges for this endpoint's reads to fail with ErrReset in
// place of the n'th received segment (1-based), after which the connection
// closes both directions so the peer's handler unblocks with EOF. n == 1
// resets before any peer data is delivered (a truncated handshake); larger
// values model a mid-stream RST.
func (c *Conn) armReset(n int) {
	b := c.recv
	b.mu.Lock()
	b.cutAt = n
	b.onReset = func() { c.Close() }
	b.mu.Unlock()
}

// Elapsed returns the virtual time this endpoint of the connection has
// consumed, including the connection-establishment RTT added by Dial. Each
// endpoint keeps its own clock; the peer's time reaches this endpoint only
// through the arrival stamps of the data it reads.
func (c *Conn) Elapsed() time.Duration { return c.clk.get() }

// AddLatency charges extra virtual time to this endpoint of the
// connection. Servers use it to model processing costs (e.g. recursive
// resolution at the resolver); the charge reaches the peer through the
// arrival stamps of subsequently written data.
func (c *Conn) AddLatency(d time.Duration) { c.clk.add(d) }

// AddLatency charges virtual time to conn if it is (or wraps) a *Conn.
// It unwraps tls.Conn-style wrappers exposing NetConn() net.Conn.
func AddLatency(conn net.Conn, d time.Duration) {
	if sc := Unwrap(conn); sc != nil {
		sc.AddLatency(d)
	}
}

// Elapsed reports conn's virtual elapsed time, unwrapping TLS if needed.
func Elapsed(conn net.Conn) time.Duration {
	if sc := Unwrap(conn); sc != nil {
		return sc.Elapsed()
	}
	return 0
}

// Unwrap digs through wrappers exposing NetConn() net.Conn (like *tls.Conn)
// until it finds the underlying *Conn, or returns nil.
func Unwrap(conn net.Conn) *Conn {
	for {
		switch c := conn.(type) {
		case *Conn:
			return c
		case interface{ NetConn() net.Conn }:
			conn = c.NetConn()
		default:
			return nil
		}
	}
}

// Listener accepts simulated connections for one host:port. It implements
// net.Listener so stdlib servers (net/http, tls.NewListener) work unchanged.
type Listener struct {
	addr    Addr
	ch      chan *Conn
	mu      sync.Mutex
	closed  bool
	closeCh chan struct{}
}

func newListener(addr Addr) *Listener {
	return &Listener{addr: addr, ch: make(chan *Conn, 64), closeCh: make(chan struct{})}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closeCh:
		return nil, errors.New("netsim: listener closed")
	}
}

// Close implements net.Listener.
func (l *Listener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.closeCh)
	}
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.addr }

// deliver hands a server-side conn to Accept, failing if the listener is
// closed or saturated.
func (l *Listener) deliver(c *Conn) error {
	select {
	case l.ch <- c:
		return nil
	case <-l.closeCh:
		return errors.New("netsim: listener closed")
	}
}
