package dnscrypt

import (
	"bytes"
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"time"

	"dnsencryption.info/doe/internal/bufpool"
	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsclient"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/netsim"
)

// Protocol constants (DNSCrypt v2 specification).
var (
	certMagic     = [4]byte{'D', 'N', 'S', 'C'}
	resolverMagic = [8]byte{'r', '6', 'f', 'n', 'v', 'W', 'j', '8'}
)

// Port is the DNSCrypt port (shared with HTTPS traffic, like DoH).
const Port = 443

// esVersionXSalsa20 identifies the X25519-XSalsa20Poly1305 construction.
const esVersionXSalsa20 = 0x0001

// Errors.
var (
	ErrBadCert     = errors.New("dnscrypt: invalid resolver certificate")
	ErrCertExpired = errors.New("dnscrypt: resolver certificate outside validity window")
	ErrNoCert      = errors.New("dnscrypt: no resolver certificate fetched")
	ErrShortQuery  = errors.New("dnscrypt: malformed encrypted query")
)

// Cert is a parsed resolver certificate.
type Cert struct {
	ESVersion   uint16
	ResolverPK  [32]byte
	ClientMagic [8]byte
	Serial      uint32
	NotBefore   time.Time
	NotAfter    time.Time
}

// marshalSignedContent serializes the to-be-signed portion.
func (c *Cert) marshalSignedContent() []byte {
	out := make([]byte, 0, 32+8+12)
	out = append(out, c.ResolverPK[:]...)
	out = append(out, c.ClientMagic[:]...)
	out = binary.BigEndian.AppendUint32(out, c.Serial)
	out = binary.BigEndian.AppendUint32(out, uint32(c.NotBefore.Unix()))
	out = binary.BigEndian.AppendUint32(out, uint32(c.NotAfter.Unix()))
	return out
}

// Marshal produces the wire certificate: magic, es-version, minor,
// signature, signed content.
func (c *Cert) Marshal(providerKey ed25519.PrivateKey) []byte {
	content := c.marshalSignedContent()
	sig := ed25519.Sign(providerKey, content)
	out := make([]byte, 0, 4+2+2+64+len(content))
	out = append(out, certMagic[:]...)
	out = binary.BigEndian.AppendUint16(out, c.ESVersion)
	out = binary.BigEndian.AppendUint16(out, 0) // protocol minor version
	out = append(out, sig...)
	out = append(out, content...)
	return out
}

// ParseCert verifies a wire certificate against the provider's Ed25519
// public key and the study's reference time.
func ParseCert(raw []byte, providerPK ed25519.PublicKey, now time.Time) (*Cert, error) {
	if len(raw) < 4+2+2+64+52 || !bytes.Equal(raw[:4], certMagic[:]) {
		return nil, ErrBadCert
	}
	es := binary.BigEndian.Uint16(raw[4:])
	sig := raw[8:72]
	content := raw[72:]
	if !ed25519.Verify(providerPK, content, sig) {
		return nil, fmt.Errorf("%w: bad signature", ErrBadCert)
	}
	var c Cert
	c.ESVersion = es
	copy(c.ResolverPK[:], content[:32])
	copy(c.ClientMagic[:], content[32:40])
	c.Serial = binary.BigEndian.Uint32(content[40:])
	c.NotBefore = time.Unix(int64(binary.BigEndian.Uint32(content[44:])), 0).UTC()
	c.NotAfter = time.Unix(int64(binary.BigEndian.Uint32(content[48:])), 0).UTC()
	if now.Before(c.NotBefore) || now.After(c.NotAfter) {
		return nil, ErrCertExpired
	}
	return &c, nil
}

// appendPad applies ISO/IEC 7816-4 padding to a multiple of 64 bytes
// (DNSCrypt's traffic-analysis mitigation: queries share a small set of
// sizes). Padding happens in place: the returned slice extends msg.
func appendPad(msg []byte) []byte {
	msg = append(msg, 0x80)
	for len(msg)%64 != 0 {
		msg = append(msg, 0)
	}
	return msg
}

// unpad reverses pad.
func unpad(msg []byte) ([]byte, error) {
	for i := len(msg) - 1; i >= 0; i-- {
		switch msg[i] {
		case 0:
			continue
		case 0x80:
			return msg[:i], nil
		default:
			return nil, errors.New("dnscrypt: bad padding")
		}
	}
	return nil, errors.New("dnscrypt: empty padding")
}

// Server is a DNSCrypt resolver front-end.
type Server struct {
	ProviderName string
	Handler      dnsserver.Handler
	Cert         Cert

	resolverKP  *KeyPair
	providerKey ed25519.PrivateKey
	certWire    []byte
}

// NewServer creates a server with fresh resolver and provider keys. The
// returned Ed25519 public key is what clients pin (as in DNSCrypt stamps).
func NewServer(providerName string, handler dnsserver.Handler) (*Server, ed25519.PublicKey, error) {
	providerPK, providerSK, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	kp, err := NewKeyPair()
	if err != nil {
		return nil, nil, err
	}
	s := &Server{
		ProviderName: dnswire.CanonicalName(providerName),
		Handler:      handler,
		resolverKP:   kp,
		providerKey:  providerSK,
	}
	s.Cert = Cert{
		ESVersion:  esVersionXSalsa20,
		ResolverPK: kp.Public,
		Serial:     1,
		NotBefore:  certs.RefTime.AddDate(0, -6, 0),
		NotAfter:   certs.RefTime.AddDate(0, 6, 0),
	}
	if _, err := rand.Read(s.Cert.ClientMagic[:]); err != nil {
		return nil, nil, err
	}
	s.certWire = s.Cert.Marshal(providerSK)
	return s, providerPK, nil
}

// certQueryName is where clients fetch certificates:
// 2.dnscrypt-cert.<provider>.
func (s *Server) certQueryName() string {
	return dnswire.CanonicalName("2.dnscrypt-cert." + s.ProviderName)
}

// DatagramHandler serves both the clear-text certificate TXT query and
// encrypted queries on one port.
func (s *Server) DatagramHandler() netsim.DatagramHandler {
	return func(from netip.Addr, req []byte) ([]byte, time.Duration, error) {
		if len(req) >= 8 && bytes.Equal(req[:8], s.Cert.ClientMagic[:]) {
			return s.serveEncrypted(from, req)
		}
		return s.serveCertQuery(from, req)
	}
}

func (s *Server) serveCertQuery(_ netip.Addr, req []byte) ([]byte, time.Duration, error) {
	m, err := dnswire.Unpack(req)
	if err != nil {
		return nil, 0, err
	}
	resp := m.Reply()
	q := m.Question1()
	if q.Type == dnswire.TypeTXT && dnswire.CanonicalName(q.Name) == s.certQueryName() {
		// Real DNSCrypt splits the cert across 255-byte strings.
		var texts []string
		for rest := s.certWire; len(rest) > 0; {
			n := 255
			if len(rest) < n {
				n = len(rest)
			}
			texts = append(texts, string(rest[:n]))
			rest = rest[n:]
		}
		resp.AddAnswer(q.Name, 3600, dnswire.TXT{Texts: texts})
	} else {
		resp.Rcode = dnswire.RcodeRefused
	}
	packed, err := resp.Pack()
	return packed, time.Millisecond, err
}

func (s *Server) serveEncrypted(from netip.Addr, req []byte) ([]byte, time.Duration, error) {
	// Layout: client-magic(8) client-pk(32) client-nonce(12) box.
	if len(req) < 8+32+12+16 {
		return nil, 0, ErrShortQuery
	}
	var clientPK [32]byte
	copy(clientPK[:], req[8:40])
	var nonce [24]byte
	copy(nonce[:12], req[40:52])
	shared, err := s.resolverKP.SharedKey(&clientPK)
	if err != nil {
		return nil, 0, err
	}
	padded, err := SecretboxOpen(req[52:], &nonce, shared)
	if err != nil {
		return nil, 0, err
	}
	plain, err := unpad(padded)
	if err != nil {
		return nil, 0, err
	}
	query, err := dnswire.Unpack(plain)
	if err != nil {
		return nil, 0, err
	}
	resp, proc := s.Handler.ServeDNS(from, query)
	packedResp, err := resp.Pack()
	if err != nil {
		return nil, 0, err
	}

	// Response nonce: client half || fresh resolver half.
	var respNonce [24]byte
	copy(respNonce[:12], nonce[:12])
	if _, err := rand.Read(respNonce[12:]); err != nil {
		return nil, 0, err
	}
	sealed := SecretboxSeal(appendPad(packedResp), &respNonce, shared)
	out := make([]byte, 0, 8+24+len(sealed))
	out = append(out, resolverMagic[:]...)
	out = append(out, respNonce[:]...)
	out = append(out, sealed...)
	return out, proc + time.Millisecond, nil
}

// Client issues DNSCrypt queries.
type Client struct {
	World *netsim.World
	From  netip.Addr
	// ProviderName and ProviderPK pin the resolver's identity (the
	// contents of a DNSCrypt stamp).
	ProviderName string
	ProviderPK   ed25519.PublicKey
	// Now anchors certificate validation (defaults to certs.RefTime).
	Now time.Time

	kp   *KeyPair
	cert *Cert
	// shared caches the NaCl box precomputation with the certificate's
	// resolver key; the X25519 exchange runs once per certificate, not
	// once per query.
	shared *[32]byte
	// ids generates transaction IDs without the process-wide lock.
	ids dnswire.IDGen
}

// NewClient creates a client with a fresh X25519 key pair.
func NewClient(w *netsim.World, from netip.Addr, providerName string, providerPK ed25519.PublicKey) (*Client, error) {
	kp, err := NewKeyPair()
	if err != nil {
		return nil, err
	}
	return &Client{
		World:        w,
		From:         from,
		ProviderName: dnswire.CanonicalName(providerName),
		ProviderPK:   providerPK,
		Now:          certs.RefTime,
		kp:           kp,
		ids:          dnswire.NewIDGen(),
	}, nil
}

// FetchCert retrieves and verifies the resolver certificate via the
// clear-text TXT bootstrap query.
//
// Deprecated: use FetchCertContext; this delegates with context.Background().
func (c *Client) FetchCert(resolver netip.Addr) error {
	return c.FetchCertContext(context.Background(), resolver)
}

// FetchCertContext retrieves and verifies the resolver certificate via the
// clear-text TXT bootstrap query, checking ctx before the exchange.
func (c *Client) FetchCertContext(ctx context.Context, resolver netip.Addr) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("dnscrypt: fetch cert: %w", err)
	}
	q := dnswire.NewQuery(dnswire.NewID(), "2.dnscrypt-cert."+c.ProviderName, dnswire.TypeTXT)
	packed, err := q.Pack()
	if err != nil {
		return err
	}
	raw, _, err := c.World.Exchange(c.From, resolver, Port, packed)
	if err != nil {
		return err
	}
	m, err := dnswire.Unpack(raw)
	if err != nil {
		return err
	}
	for _, rr := range m.Answers {
		txt, ok := rr.Data.(dnswire.TXT)
		if !ok {
			continue
		}
		var wire []byte
		for _, s := range txt.Texts {
			wire = append(wire, s...)
		}
		cert, err := ParseCert(wire, c.ProviderPK, c.Now)
		if err != nil {
			return err
		}
		shared, err := c.kp.SharedKey(&cert.ResolverPK)
		if err != nil {
			return err
		}
		c.cert = cert
		c.shared = shared
		return nil
	}
	return ErrNoCert
}

// Query performs one encrypted lookup. FetchCert must have succeeded.
//
// Deprecated: use QueryContext; this delegates with context.Background().
func (c *Client) Query(resolver netip.Addr, name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	return c.QueryContext(context.Background(), resolver, name, qtype)
}

// QueryContext performs one encrypted lookup, checking ctx before the
// exchange. FetchCert must have succeeded.
//
//doelint:hotpath
func (c *Client) QueryContext(ctx context.Context, resolver netip.Addr, name string, qtype dnswire.Type) (*dnsclient.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dnscrypt: query: %w", err)
	}
	if c.cert == nil {
		return nil, ErrNoCert
	}
	shared := c.shared
	if shared == nil {
		// Certificate installed without FetchCert (tests); derive lazily.
		var err error
		if shared, err = c.kp.SharedKey(&c.cert.ResolverPK); err != nil {
			return nil, err
		}
		c.shared = shared
	}
	q := dnswire.NewQuery(c.ids.Next(), name, qtype)
	pb := bufpool.Get(512)
	defer bufpool.Put(pb)
	packed, err := q.AppendPack((*pb)[:0])
	if err != nil {
		return nil, err
	}
	var nonce [24]byte
	if _, err := rand.Read(nonce[:12]); err != nil {
		return nil, err
	}
	*pb = appendPad(packed)

	// The datagram escapes into the simulated network (interceptors may
	// retain it), so it is deliberately not pooled; the box is sealed
	// directly into it.
	msg := make([]byte, 0, 8+32+12+16+len(*pb)) //doelint:allow hotalloc -- datagram escapes to World.Exchange and cannot be recycled
	msg = append(msg, c.cert.ClientMagic[:]...)
	msg = append(msg, c.kp.Public[:]...)
	msg = append(msg, nonce[:12]...)
	msg = SecretboxSealAppend(msg, *pb, &nonce, shared)

	raw, elapsed, err := c.World.Exchange(c.From, resolver, Port, msg)
	if err != nil {
		return nil, err
	}
	if len(raw) < 8+24+16 || !bytes.Equal(raw[:8], resolverMagic[:]) {
		return nil, errors.New("dnscrypt: malformed response")
	}
	var respNonce [24]byte
	copy(respNonce[:], raw[8:32])
	if !bytes.Equal(respNonce[:12], nonce[:12]) {
		return nil, errors.New("dnscrypt: response nonce mismatch")
	}
	// The query bytes in pb are dead once sealed into the datagram; decrypt
	// the response into the same pooled buffer. Unpack copies every field
	// out, so the buffer is free to return to the pool on exit.
	padded, err := SecretboxOpenAppend((*pb)[:0], raw[32:], &respNonce, shared)
	if err != nil {
		return nil, err
	}
	*pb = padded
	plain, err := unpad(padded)
	if err != nil {
		return nil, err
	}
	m, err := dnswire.Unpack(plain)
	if err != nil {
		return nil, err
	}
	if m.ID != q.ID {
		return nil, dnsclient.ErrIDMismatch
	}
	return &dnsclient.Result{Msg: m, Latency: elapsed}, nil
}
