package dnswire

import (
	"bytes"
	"net/netip"
	"testing"
)

// benchMessage is a response with every common section populated — the
// shape the steady-state exchange paths pack and parse per query.
func benchMessage(b *testing.B) *Message {
	b.Helper()
	q := NewQuery(0x1234, "q1.measure.example.org", TypeA)
	r := q.Reply()
	r.AddAnswer("q1.measure.example.org", 300, A{Addr: netip.MustParseAddr("192.0.2.1")})
	r.AddAnswer("q1.measure.example.org", 300, CNAME{Target: "alias.example.org"})
	r.AddAuthority("example.org", 900, SOA{MName: "ns1.example.org", RName: "hostmaster.example.org", Serial: 7})
	return r
}

// BenchmarkNewIDParallel exercises the legacy process-wide ID source under
// contention: every NewID serializes on one mutex.
func BenchmarkNewIDParallel(b *testing.B) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = NewID()
		}
	})
}

// BenchmarkIDGenParallel is the per-session replacement: each worker owns a
// generator, so ID draws share no state at all.
func BenchmarkIDGenParallel(b *testing.B) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		g := NewIDGen()
		for pb.Next() {
			_ = g.Next()
		}
	})
}

// BenchmarkAppendPackTCP measures the zero-copy framing path with a reused
// buffer, the per-query cost on every stream transport.
func BenchmarkAppendPackTCP(b *testing.B) {
	m := benchMessage(b)
	buf, err := m.AppendPackTCP(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = m.AppendPackTCP(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadTCPAppend measures frame reads into a reused buffer.
func BenchmarkReadTCPAppend(b *testing.B) {
	m := benchMessage(b)
	framed, err := m.AppendPackTCP(nil)
	if err != nil {
		b.Fatal(err)
	}
	r := bytes.NewReader(framed)
	var scratch []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(framed)
		scratch, err = ReadTCPAppend(r, scratch[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnpackInto measures parsing with reused message storage, the
// server-loop fast path.
func BenchmarkUnpackInto(b *testing.B) {
	m := benchMessage(b)
	packed, err := m.Pack()
	if err != nil {
		b.Fatal(err)
	}
	var dst Message
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := UnpackInto(&dst, packed); err != nil {
			b.Fatal(err)
		}
	}
}
