package proxy

import (
	"encoding/binary"
	"errors"
	"io"
	"net/netip"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/netsim"
)

// servePair wires a SOCKS server on an in-memory conn pair and returns the
// client end.
func servePair(t *testing.T, requireAuth bool, dial Dialer) *netsim.Conn {
	t.Helper()
	client, server := netsim.Pair(
		netsim.Addr{IP: netip.MustParseAddr("10.0.0.1"), Port: 50000},
		netsim.Addr{IP: netip.MustParseAddr("10.0.0.2"), Port: 1080},
		time.Millisecond, nil, 0)
	client.SetDeadline(time.Now().Add(2 * time.Second))
	go ServeConn(server, requireAuth, dial)
	return client
}

// echoDialer returns a loopback pipe as the "target".
func echoDialer(t *testing.T) Dialer {
	t.Helper()
	return func(req Request) (*netsim.Conn, error) {
		a, b := netsim.Pair(
			netsim.Addr{IP: netip.MustParseAddr("127.0.0.1"), Port: 1},
			netsim.Addr{IP: req.Target, Port: req.Port},
			time.Millisecond, nil, 0)
		go func() {
			defer b.Close()
			io.Copy(b, b) //nolint:errcheck
		}()
		return a, nil
	}
}

func TestClientConnectNoAuth(t *testing.T) {
	client := servePair(t, false, echoDialer(t))
	defer client.Close()
	if err := ClientConnect(client, nil, netip.MustParseAddr("192.0.2.1"), 80); err != nil {
		t.Fatal(err)
	}
	client.Write([]byte("ping")) //nolint:errcheck
	buf := make([]byte, 4)
	if _, err := io.ReadFull(client, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("tunnel echo = %q, %v", buf, err)
	}
}

func TestServerRejectsNoAuthWhenRequired(t *testing.T) {
	client := servePair(t, true, echoDialer(t))
	defer client.Close()
	err := ClientConnect(client, nil, netip.MustParseAddr("192.0.2.1"), 80)
	if !errors.Is(err, ErrAuthRequired) {
		t.Errorf("err = %v, want ErrAuthRequired", err)
	}
}

func TestUsernamePropagatesToDialer(t *testing.T) {
	var gotUser string
	dial := func(req Request) (*netsim.Conn, error) {
		gotUser = req.Username
		return echoDialer(t)(req)
	}
	client := servePair(t, true, dial)
	defer client.Close()
	creds := &Credentials{Username: "node-42", Password: "x"}
	if err := ClientConnect(client, creds, netip.MustParseAddr("192.0.2.1"), 80); err != nil {
		t.Fatal(err)
	}
	if gotUser != "node-42" {
		t.Errorf("username = %q", gotUser)
	}
}

func TestIPv6Target(t *testing.T) {
	var gotTarget netip.Addr
	dial := func(req Request) (*netsim.Conn, error) {
		gotTarget = req.Target
		return echoDialer(t)(req)
	}
	client := servePair(t, false, dial)
	defer client.Close()
	v6 := netip.MustParseAddr("2001:db8::53")
	if err := ClientConnect(client, nil, v6, 853); err != nil {
		t.Fatal(err)
	}
	if gotTarget != v6 {
		t.Errorf("target = %v", gotTarget)
	}
}

func TestDomainATYPRequest(t *testing.T) {
	var gotDomain string
	dial := func(req Request) (*netsim.Conn, error) {
		gotDomain = req.Domain
		return nil, netsim.ErrRefused
	}
	client := servePair(t, false, dial)
	defer client.Close()
	// Hand-roll a domain-ATYP CONNECT (our client only sends IPs).
	client.Write([]byte{5, 1, 0}) //nolint:errcheck
	sel := make([]byte, 2)
	io.ReadFull(client, sel) //nolint:errcheck
	req := []byte{5, 1, 0, 3, byte(len("dns.example"))}
	req = append(req, "dns.example"...)
	req = binary.BigEndian.AppendUint16(req, 853)
	client.Write(req) //nolint:errcheck
	head := make([]byte, 4)
	if _, err := io.ReadFull(client, head); err != nil {
		t.Fatal(err)
	}
	if head[1] != 5 { // connection refused
		t.Errorf("reply code = %d, want 5", head[1])
	}
	if gotDomain != "dns.example" {
		t.Errorf("domain = %q", gotDomain)
	}
}

func TestUnsupportedCommandRejected(t *testing.T) {
	client := servePair(t, false, echoDialer(t))
	defer client.Close()
	client.Write([]byte{5, 1, 0}) //nolint:errcheck
	sel := make([]byte, 2)
	io.ReadFull(client, sel) //nolint:errcheck
	// BIND (0x02) request.
	req := []byte{5, 2, 0, 1, 192, 0, 2, 1, 0, 80}
	client.Write(req) //nolint:errcheck
	head := make([]byte, 4)
	if _, err := io.ReadFull(client, head); err != nil {
		t.Fatal(err)
	}
	if head[1] != 7 { // command not supported
		t.Errorf("reply code = %d, want 7", head[1])
	}
}

func TestBadVersionDropped(t *testing.T) {
	client := servePair(t, false, echoDialer(t))
	defer client.Close()
	client.Write([]byte{4, 1, 0}) //nolint:errcheck // SOCKS4 greeting
	buf := make([]byte, 1)
	if _, err := client.Read(buf); err != io.EOF {
		t.Errorf("read after bad version = %v, want EOF", err)
	}
}

func TestReplyCodeClassification(t *testing.T) {
	cases := []struct {
		err      error
		platform bool
	}{
		{&ConnectError{Code: 1}, true},  // general failure = platform
		{&ConnectError{Code: 4}, false}, // host unreachable = target
		{&ConnectError{Code: 5}, false}, // refused = target
		{errors.New("other"), false},
	}
	for _, c := range cases {
		if got := IsPlatformDisruption(c.err); got != c.platform {
			t.Errorf("IsPlatformDisruption(%v) = %v, want %v", c.err, got, c.platform)
		}
	}
	var ce *ConnectError
	if !errors.As(error(&ConnectError{Code: 4}), &ce) || ce.Code != 4 {
		t.Error("ConnectError does not unwrap via errors.As")
	}
	if !errors.Is(&ConnectError{Code: 4}, ErrConnectFailed) {
		t.Error("ConnectError is not ErrConnectFailed")
	}
}

func TestErrorReplyMapping(t *testing.T) {
	cases := []struct {
		err  error
		code byte
	}{
		{netsim.ErrRefused, 5},
		{netsim.ErrBlackhole, 4},
		{netsim.ErrNoRoute, 3},
		{&ConnectError{Code: 4}, 4}, // propagated unchanged
		{errors.New("anything"), 1},
	}
	for _, c := range cases {
		if got := errorReply(c.err); got != c.code {
			t.Errorf("errorReply(%v) = %d, want %d", c.err, got, c.code)
		}
	}
}
