package doh

import (
	"bufio"
	"crypto/tls"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnswire"
)

// rawTLS opens a TLS connection to the fixture's DoH server without the DoH
// client, for protocol-level fault injection.
func rawTLS(t *testing.T, f *fixture) *tls.Conn {
	t.Helper()
	raw, err := f.world.Dial(clientIP, dohIP, Port)
	if err != nil {
		t.Fatal(err)
	}
	raw.SetDeadline(time.Now().Add(2 * time.Second))
	tc := tls.Client(raw, &tls.Config{
		RootCAs:    certs.Pool(f.ca),
		ServerName: f.tmpl.Host,
		Time:       func() time.Time { return certs.RefTime },
	})
	if err := tc.Handshake(); err != nil {
		t.Fatal(err)
	}
	return tc
}

func TestServerDropsHTTPGarbage(t *testing.T) {
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone})
	tc := rawTLS(t, f)
	defer tc.Close()
	tc.Write([]byte("NOT AN HTTP REQUEST\r\n\r\n")) //nolint:errcheck
	buf := make([]byte, 1)
	if _, err := tc.Read(buf); err != io.EOF {
		t.Errorf("read after garbage = %v, want EOF", err)
	}
}

func TestServerRejectsBadBase64(t *testing.T) {
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone})
	tc := rawTLS(t, f)
	defer tc.Close()
	req, _ := http.NewRequest(http.MethodGet, "https://"+f.tmpl.Host+DefaultPath+"?dns=!!!not-base64!!!", nil)
	if err := req.Write(tc); err != nil {
		t.Fatal(err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(tc), req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestServerRejectsMissingDNSParam(t *testing.T) {
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone})
	tc := rawTLS(t, f)
	defer tc.Close()
	req, _ := http.NewRequest(http.MethodGet, "https://"+f.tmpl.Host+DefaultPath, nil)
	req.Write(tc) //nolint:errcheck
	resp, err := http.ReadResponse(bufio.NewReader(tc), req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestServerRejectsWrongContentType(t *testing.T) {
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone})
	tc := rawTLS(t, f)
	defer tc.Close()
	body := strings.NewReader("x")
	req, _ := http.NewRequest(http.MethodPost, "https://"+f.tmpl.Host+DefaultPath, body)
	req.Header.Set("Content-Type", "text/plain")
	req.Write(tc) //nolint:errcheck
	resp, err := http.ReadResponse(bufio.NewReader(tc), req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("status = %d, want 415", resp.StatusCode)
	}
}

func TestServerRejectsUnsupportedMethod(t *testing.T) {
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone})
	tc := rawTLS(t, f)
	defer tc.Close()
	req, _ := http.NewRequest(http.MethodPut, "https://"+f.tmpl.Host+DefaultPath+"?dns=AAAA", nil)
	req.Write(tc) //nolint:errcheck
	resp, err := http.ReadResponse(bufio.NewReader(tc), req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d, want 405", resp.StatusCode)
	}
}

func TestServerRejectsMalformedDNSMessage(t *testing.T) {
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone})
	tc := rawTLS(t, f)
	defer tc.Close()
	// Valid base64url, but not a DNS message.
	req, _ := http.NewRequest(http.MethodGet, "https://"+f.tmpl.Host+DefaultPath+"?dns=AAEC", nil)
	req.Write(tc) //nolint:errcheck
	resp, err := http.ReadResponse(bufio.NewReader(tc), req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestKeepAliveSurvivesErrorResponses(t *testing.T) {
	f := newFixture(t)
	f.serve(t, &Server{Handler: f.zone})
	tc := rawTLS(t, f)
	defer tc.Close()
	br := bufio.NewReader(tc)
	// A bad request followed by a good one on the same connection.
	bad, _ := http.NewRequest(http.MethodGet, "https://"+f.tmpl.Host+DefaultPath, nil)
	bad.Write(tc) //nolint:errcheck
	resp1, err := http.ReadResponse(br, bad)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp1.Body) //nolint:errcheck
	resp1.Body.Close()

	q := dnswire.NewQuery(0, "after-error.measure.example.org", dnswire.TypeA)
	packed, _ := q.Pack()
	conn := &Conn{client: &Client{Method: GET}, template: f.tmpl}
	if _, err := tc.Write(conn.appendRequest(nil, packed)); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatalf("second request on same conn: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200", resp2.StatusCode)
	}
}
