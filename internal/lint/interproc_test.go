package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dnsencryption.info/doe/internal/lint"
)

// fixtureBufpool is a minimal stand-in for the module's buffer pool; the
// analyzers match the package by its path's last segment, so the fixture
// module can carry its own.
const fixtureBufpool = `package bufpool

func Get(n int) *[]byte {
	b := make([]byte, 0, n)
	return &b
}

func Put(b *[]byte) {}
`

// writeModule writes files into a fresh module and returns its directory,
// for tests that call lint.Run directly (error cases, custom patterns).
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	mod := "module fixture.example/m\n\ngo 1.22\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(mod), 0o644); err != nil {
		t.Fatal(err)
	}
	for rel, content := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

var walltaintFixture = map[string]string{
	// det.Entry reaches time.Now through util.Stamp (finding, with the
	// chain in the message); det.Roll reaches the global rand the same way.
	// A justified allow on the call line suppresses exactly that path, a
	// clockboundary on the callee absorbs the facts, and a direct read in
	// det stays the determinism analyzer's finding alone.
	"det/det.go": `package det

import (
	"time"

	"fixture.example/m/util"
)

func Entry() int64 { return util.Stamp() }

func Allowed() int64 {
	return util.Stamp() //doelint:allow walltaint -- fixture: audited boundary
}

func ViaBoundary() int64 { return util.Bounded() }

func Roll() int { return util.Roll() }

func Direct() int64 { return time.Now().UnixNano() }
`,
	"util/util.go": `package util

import (
	"math/rand"
	"time"
)

func Stamp() int64 { return time.Now().UnixNano() }

// Bounded converts one wall reading into the virtual timeline.
//
//doelint:clockboundary -- fixture: converts wall readings to virtual time
func Bounded() int64 { return time.Now().UnixNano() }

func Roll() int { return rand.Intn(6) }
`,
}

func TestWalltaint(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.DeterministicPackages = []string{"det"}
	findings := lintFixtures(t, cfg, walltaintFixture)

	wantFindings(t, findings, "walltaint", []string{"det/det.go:9", "det/det.go:17"})
	// The direct read is determinism's finding, never duplicated by
	// walltaint.
	wantFindings(t, findings, "determinism", []string{"det/det.go:19"})

	var clockMsg, randMsg string
	for _, f := range findings {
		if f.Check != "walltaint" {
			continue
		}
		switch f.Line {
		case 9:
			clockMsg = f.Message
		case 17:
			randMsg = f.Message
		}
	}
	if !strings.Contains(clockMsg, "det.Entry -> util.Stamp -> time.Now") {
		t.Errorf("clock taint message lacks the call chain: %q", clockMsg)
	}
	if !strings.Contains(randMsg, "det.Roll -> util.Roll -> rand.Intn") {
		t.Errorf("rand taint message lacks the call chain: %q", randMsg)
	}
}

func TestWalltaintObservability(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.ObservabilityPackages = []string{"tele"}
	findings := lintFixtures(t, cfg, map[string]string{
		// Wall-clock reach is a finding for observability packages; the
		// global rand rule applies only to deterministic ones.
		"tele/tele.go": `package tele

import "fixture.example/m/util"

func Record() int64 { return util.Stamp() }

func ID() int { return util.Roll() }
`,
		"util/util.go": walltaintFixture["util/util.go"],
	})
	wantFindings(t, findings, "walltaint", []string{"tele/tele.go:5"})
}

func TestBufown(t *testing.T) {
	findings := lintFixtures(t, lint.DefaultConfig(), map[string]string{
		"bufpool/bufpool.go": fixtureBufpool,
		"q/q.go": `package q

import "fixture.example/m/bufpool"

func Sink(b *[]byte) { bufpool.Put(b) }
`,
		"p/p.go": `package p

import (
	"errors"

	"fixture.example/m/bufpool"
	"fixture.example/m/q"
)

type S struct{ buf *[]byte }

func Leak() {
	b := bufpool.Get(10) // line 13: never returned to the pool
	_ = b
}

func EarlyReturn(fail bool) error {
	b := bufpool.Get(10)
	if fail {
		return errors.New("fail") // line 20: return without Put
	}
	bufpool.Put(b)
	return nil
}

func Fine() int {
	b := bufpool.Get(10)
	defer bufpool.Put(b)
	return cap(*b)
}

func UseAfterPut() int {
	b := bufpool.Get(10)
	bufpool.Put(b)
	return len(*b) // line 35: use after Put
}

func Handoff() {
	b := bufpool.Get(10)
	sink(b)
}

func CrossHandoff() {
	b := bufpool.Get(10)
	q.Sink(b)
}

func BadHandoff() {
	b := bufpool.Get(10)
	drop(b) // line 50: handed to a helper that never Puts
}

func Transferred() *[]byte {
	b := bufpool.Get(10)
	return b //doelint:transfer -- fixture: caller owns the buffer
}

func EscapeAtAcq() S {
	return S{buf: bufpool.Get(10)} // line 59: escapes at acquisition
}

func AnnotatedEscape() S {
	return S{buf: bufpool.Get(10)} //doelint:transfer -- fixture: S owns the buffer
}

func sink(b *[]byte) { bufpool.Put(b) }

func drop(b *[]byte) { _ = b }
`,
	})
	wantFindings(t, findings, "bufown", []string{
		"p/p.go:13", "p/p.go:20", "p/p.go:35", "p/p.go:50", "p/p.go:59",
	})
}

func TestCtxplumb(t *testing.T) {
	findings := lintFixtures(t, lint.DefaultConfig(), map[string]string{
		"c/c.go": `package c

import "context"

func Root() context.Context {
	return context.Background() // line 6: root outside main
}

// OkRoot is the fixture's process root.
//
//doelint:ctxroot -- fixture: the one legitimate root
func OkRoot() context.Context {
	return context.Background()
}

// Deprecated: use QueryContext.
func Query() {
	QueryContext(context.TODO())
}

func Wrap() {
	WrapContext(context.Background())
}

func WrapContext(ctx context.Context) { _ = ctx }

func QueryContext(ctx context.Context) { _ = ctx }

func BadSig(name string, ctx context.Context) { _, _ = name, ctx } // line 29: ctx not first

type Holder struct{ ctx context.Context }

func StoreLit(ctx context.Context) *Holder {
	return &Holder{ctx: ctx} // line 34: stored in composite literal
}

func (h *Holder) Set(ctx context.Context) {
	h.ctx = ctx // line 38: stored in struct field
}
`,
		// Package main is the legitimate place for a root context.
		"cmd/m/main.go": `package main

import "context"

func main() {
	_ = context.Background()
}
`,
	})
	wantFindings(t, findings, "ctxplumb", []string{
		"c/c.go:6", "c/c.go:29", "c/c.go:34", "c/c.go:38",
	})
}

func TestHotallocInterprocedural(t *testing.T) {
	findings := lintFixtures(t, lint.DefaultConfig(), map[string]string{
		"h/h.go": `package h

import "fixture.example/m/hu"

// Hot is on the steady-state path.
//
//doelint:hotpath
func Hot() []byte { return hu.Helper(10) } // line 8: helper allocates per call

// HotOK calls an allow-justified helper: the masked source never taints.
//
//doelint:hotpath
func HotOK() []byte { return hu.Amortized(10) }

// HotViaHot delegates to a hotpath-annotated helper, whose discipline is
// enforced at its own declaration, not at this call.
//
//doelint:hotpath
func HotViaHot() []byte { return hu.HotHelper(10) }
`,
		"hu/hu.go": `package hu

func Helper(n int) []byte { return make([]byte, n) }

func Amortized(n int) []byte {
	return make([]byte, n) //doelint:allow hotalloc -- fixture: amortized growth
}

// HotHelper is itself on the hot path.
//
//doelint:hotpath
func HotHelper(n int) []byte { return make([]byte, n) } // line 12: direct allocation
`,
	})
	wantFindings(t, findings, "hotalloc", []string{"h/h.go:8", "hu/hu.go:12"})

	var msg string
	for _, f := range findings {
		if f.Check == "hotalloc" && strings.HasSuffix(filepath.ToSlash(f.File), "h/h.go") {
			msg = f.Message
		}
	}
	if !strings.Contains(msg, "hu.Helper -> make([]byte)") {
		t.Errorf("interprocedural hotalloc message lacks the chain: %q", msg)
	}
}

func TestDuplicatePatternsDedupe(t *testing.T) {
	dir := writeModule(t, walltaintFixture)
	cfg := lint.DefaultConfig()
	cfg.DeterministicPackages = []string{"det"}

	once, err := lint.Run(dir, []string{"./..."}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The same package arrives as a root three times over and as a
	// dependency of det; findings must not multiply.
	dup, err := lint.Run(dir, []string{"./...", "./det", "./det", "./util"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(once) == 0 {
		t.Fatal("fixture produced no findings")
	}
	if len(dup) != len(once) {
		t.Fatalf("duplicate patterns changed findings: %d vs %d\n%v\n%v", len(dup), len(once), dup, once)
	}
	for i := range once {
		if once[i] != dup[i] {
			t.Errorf("finding %d differs: %v vs %v", i, once[i], dup[i])
		}
	}
}

func TestChecksExclusion(t *testing.T) {
	dir := writeModule(t, walltaintFixture)
	cfg := lint.DefaultConfig()
	cfg.DeterministicPackages = []string{"det"}
	cfg.Checks = []string{"-walltaint"}

	findings, err := lint.Run(dir, []string{"./..."}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := byCheck(findings, "walltaint"); len(got) != 0 {
		t.Errorf("excluded walltaint still reported: %v", got)
	}
	if got := byCheck(findings, "determinism"); len(got) == 0 {
		t.Error("exclusion of one check silenced the others")
	}
}

func TestChecksValidation(t *testing.T) {
	dir := writeModule(t, map[string]string{"p/p.go": "package p\n"})
	cases := []struct {
		checks []string
		want   string
	}{
		{[]string{"nosuch"}, "unknown check"},
		{[]string{"-nosuch"}, "unknown check"},
		{[]string{"determinism", "-walltaint"}, "cannot mix"},
	}
	for _, tc := range cases {
		cfg := lint.DefaultConfig()
		cfg.Checks = tc.checks
		_, err := lint.Run(dir, []string{"./..."}, cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Checks=%v: error %v, want containing %q", tc.checks, err, tc.want)
		}
	}
}

func TestFactCache(t *testing.T) {
	dir := writeModule(t, walltaintFixture)
	cfg := lint.DefaultConfig()
	cfg.DeterministicPackages = []string{"det"}
	cfg.FactCacheDir = t.TempDir()

	// Linting only ./det makes util a dep-only package: its facts are
	// summarized into the cache on the first run and absorbed from it on
	// the second. Findings must be identical either way.
	first, err := lint.Run(dir, []string{"./det"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(cfg.FactCacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("first run left the fact cache empty")
	}
	second, err := lint.Run(dir, []string{"./det"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("cached run changed findings: %d vs %d\n%v\n%v", len(second), len(first), second, first)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("finding %d differs under cache: %v vs %v", i, first[i], second[i])
		}
	}
	if got := byCheck(second, "walltaint"); len(got) != 2 {
		t.Errorf("walltaint findings through cached summaries = %v, want 2", got)
	}

	// An edited dependency invalidates its cache entry: the summary hash
	// no longer matches, so facts come from a fresh parse.
	util := filepath.Join(dir, "util", "util.go")
	content, err := os.ReadFile(util)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(content), "func Stamp() int64 { return time.Now().UnixNano() }",
		"func Stamp() int64 { return 0 }", 1)
	if err := os.WriteFile(util, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	third, err := lint.Run(dir, []string{"./det"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := byCheck(third, "walltaint"); len(got) != 1 {
		t.Errorf("after removing the clock read, walltaint findings = %v, want 1 (rand only)", got)
	}
}
