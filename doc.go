// Package doe is a from-scratch reproduction of "An End-to-End, Large-Scale
// Measurement of DNS-over-Encryption: How Far Have We Come?" (IMC 2019).
//
// The implementation lives under internal/: the DNS wire codec, DoT and DoH
// clients and servers, a SOCKS5 proxy-network substrate, ZMap-style
// scanning, NetFlow and passive-DNS analysis, and the calibrated simulated
// Internet the study runs against. The cmd/ binaries regenerate the paper's
// tables and figures; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
//
// The benchmarks in bench_test.go exercise one experiment per table and
// figure, plus ablations of the design choices called out in DESIGN.md.
package doe
