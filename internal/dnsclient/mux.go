package dnsclient

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/bufpool"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/netsim"
)

// DefaultMaxInFlight is the in-flight query limit a pipelined session uses
// when its owner does not pick one. RFC 7766 sets no protocol limit; 64
// keeps the transaction-ID collision probability negligible (64/65536 per
// draw) while covering every batch size the study issues.
const DefaultMaxInFlight = 64

// Mux is the RFC 7766 §6.2.1.1 query-pipelining engine shared by the stream
// transports (DNS over TCP here, DoT via dot.Conn.Pipeline): many queries in
// flight on one connection, responses matched to queries by DNS transaction
// ID rather than by arrival order.
//
// Concurrency contract: Exchange and Batch are safe for concurrent use by
// any number of goroutines; at most the configured in-flight limit of
// queries is outstanding at once, and further callers block. One demux
// reader goroutine — started lazily with the first query — owns the read
// side of the stream: it parses each response, computes that query's
// virtual-clock latency ((clock at response read) − (clock at query write)),
// and parks the result in the query's rendezvous slot. Transaction IDs are
// drawn from the session's IDGen under the write lock and re-drawn on
// collision with the in-flight table, so ID reuse cannot mismatch responses.
//
// A read or write error is fatal to the whole session: every in-flight
// query fails with the same error (wrapping ErrClosed when the session was
// closed locally) and later queries fail immediately. The resolver layer
// maps these deaths to resolver.ErrSessionClosed.
type Mux struct {
	// PerQueryCost is charged to the virtual clock under the write lock
	// before each query's bytes go out (per-record TLS processing for DoT;
	// zero for clear-text TCP). Set before the first query.
	PerQueryCost time.Duration
	// PadBlock, when non-zero, pads each query to this EDNS(0) block size
	// (RFC 8467) before framing. Set before the first query.
	PadBlock int

	limit int
	sem   chan struct{}
	clock *netsim.Conn

	// Write side, serialized by wmu: ID allocation, packing, framing, the
	// per-query clock charge, and the Write call itself.
	wmu  sync.Mutex
	w    io.Writer
	r    io.Reader
	wbuf *[]byte
	ids  dnswire.IDGen

	// Demux state, guarded by mu. Rendezvous slots are recycled through a
	// free list so steady-state pipelined exchanges allocate no channels.
	mu       sync.Mutex
	inflight map[uint16]*muxPending
	free     *muxPending
	dead     error
	closed   bool
	started  bool
}

// muxPending is one query's rendezvous slot.
type muxPending struct {
	ch    chan muxDelivery // buffered, capacity 1: the reader never blocks
	start time.Duration    // virtual clock when the query was written
	next  *muxPending      // free list
}

type muxDelivery struct {
	msg *dnswire.Message
	lat time.Duration
	err error
}

// NewMux wraps an established stream as a pipelined DNS session. rw carries
// the length-prefixed DNS frames (the netsim.Conn itself for clear-text TCP,
// the tls.Conn for DoT); clock is the connection whose virtual clock charges
// apply to. limit <= 0 selects DefaultMaxInFlight.
func NewMux(rw io.ReadWriter, clock *netsim.Conn, limit int) *Mux {
	if limit <= 0 {
		limit = DefaultMaxInFlight
	}
	return &Mux{
		limit:    limit,
		sem:      make(chan struct{}, limit),
		clock:    clock,
		w:        rw,
		r:        rw,
		wbuf:     bufpool.Get(512), //doelint:transfer -- owned by Mux; released in Close
		ids:      dnswire.NewIDGen(),
		inflight: make(map[uint16]*muxPending, limit),
	}
}

// MaxInFlight reports the session's in-flight query limit.
func (m *Mux) MaxInFlight() int { return m.limit }

// acquire takes one in-flight slot, honouring ctx while blocked.
func (m *Mux) acquire(ctx context.Context) error {
	select {
	case m.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("dnsclient: pipelined query: %w", ctx.Err())
	}
}

func (m *Mux) release() { <-m.sem }

// getSlotLocked pops a rendezvous slot off the free list; callers hold m.mu.
func (m *Mux) getSlotLocked() *muxPending {
	if p := m.free; p != nil {
		m.free = p.next
		p.next = nil
		return p
	}
	return &muxPending{ch: make(chan muxDelivery, 1)} //doelint:allow hotalloc -- slots are recycled through the free list; steady state allocates none
}

// putSlot recycles a drained slot.
func (m *Mux) putSlot(p *muxPending) {
	m.mu.Lock()
	p.next = m.free
	m.free = p
	m.mu.Unlock()
}

// register allocates a collision-checked transaction ID and an in-flight
// slot stamped with start; callers hold m.wmu. It also starts the demux
// reader on first use, once there is a response to wait for.
func (m *Mux) register(start time.Duration) (*muxPending, uint16, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, 0, ErrClosed
	}
	if m.dead != nil {
		return nil, 0, m.dead
	}
	var id uint16
	for redraw := 0; ; redraw++ {
		id = m.ids.Next()
		if _, taken := m.inflight[id]; !taken {
			break
		}
		// With in-flight bounded far below 2^16 a free ID is found almost
		// immediately; the bound only guards against a broken generator.
		if redraw > 1024 {
			return nil, 0, fmt.Errorf("dnsclient: transaction ID space exhausted")
		}
	}
	p := m.getSlotLocked()
	p.start = start
	m.inflight[id] = p
	if !m.started {
		m.started = true
		go m.readLoop()
	}
	return p, id, nil
}

// deregister removes id from the in-flight table. It reports false when the
// reader already claimed the slot — in that case a delivery is guaranteed to
// be buffered in the slot's channel, because the reader completes the send
// while holding m.mu.
func (m *Mux) deregister(id uint16) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, mine := m.inflight[id]; !mine {
		return false
	}
	delete(m.inflight, id)
	return true
}

// send packs and writes one query under the write lock, returning its armed
// rendezvous slot. Callers must hold an in-flight semaphore slot.
//
//doelint:hotpath
func (m *Mux) send(name string, qtype dnswire.Type) (*muxPending, uint16, error) {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	start := m.clock.Elapsed()
	p, id, err := m.register(start)
	if err != nil {
		return nil, 0, err
	}
	q := dnswire.NewQuery(id, name, qtype)
	if m.PadBlock > 0 {
		q.SetEDNS0(4096, false)
		if err := q.PadToBlock(m.PadBlock); err != nil { //doelint:allow hotalloc -- padding repacks the query for sizing; one pass per query by design
			m.deregister(id)
			return nil, 0, err
		}
	}
	m.clock.AddLatency(m.PerQueryCost)
	out, err := dnswire.WriteMessageTCP(m.w, q, *m.wbuf)
	*m.wbuf = out
	if err != nil {
		m.deregister(id)
		m.fail(err)
		return nil, 0, err
	}
	return p, id, nil
}

// wait blocks for the slot's delivery, honouring ctx. It releases the
// caller's semaphore slot and recycles the rendezvous slot.
//
//doelint:hotpath
func (m *Mux) wait(ctx context.Context, p *muxPending, id uint16) (*Result, error) {
	var d muxDelivery
	select {
	case d = <-p.ch:
	case <-ctx.Done():
		if m.deregister(id) {
			// The reader never saw this query's response: nothing can be
			// delivered any more, so the slot is clean for reuse.
			m.putSlot(p)
			m.release()
			return nil, fmt.Errorf("dnsclient: pipelined query: %w", ctx.Err())
		}
		// The reader beat the cancellation; its delivery is buffered.
		d = <-p.ch
	}
	m.putSlot(p)
	m.release()
	if d.err != nil {
		return nil, d.err
	}
	return &Result{Msg: d.msg, Latency: d.lat}, nil
}

// Exchange issues one query on the pipelined session and waits for its
// response. Safe for concurrent use; blocks while the session is at its
// in-flight limit.
//
//doelint:hotpath
func (m *Mux) Exchange(ctx context.Context, name string, qtype dnswire.Type) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dnsclient: pipelined query: %w", err)
	}
	if err := m.acquire(ctx); err != nil {
		return nil, err
	}
	p, id, err := m.send(name, qtype)
	if err != nil {
		m.release()
		return nil, err
	}
	return m.wait(ctx, p, id)
}

// Batch issues len(names) queries as one coalesced burst — every query is
// packed back-to-back and written in a single Write, the client-side
// response to RFC 7766 §6.2.1.1's segment-coalescing advice — then collects
// all responses, returning results in query order (the demux layer absorbs
// any reordering). The burst counts len(names) against the in-flight limit.
//
// Batches are the deterministic face of pipelining: one goroutine writes the
// whole burst before the server can observe any of it, so virtual-clock
// stamps never depend on goroutine scheduling, and the session's Elapsed
// delta around a Batch divided by len(names) is the amortized per-query
// latency the Fig. 9 "multiplexed" column reports.
func (m *Mux) Batch(ctx context.Context, names []string, qtype dnswire.Type, out []Result) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dnsclient: pipelined batch: %w", err)
	}
	if len(names) > m.limit {
		return nil, fmt.Errorf("dnsclient: batch of %d exceeds in-flight limit %d", len(names), m.limit)
	}
	for i := range names {
		if err := m.acquire(ctx); err != nil {
			for ; i > 0; i-- {
				m.release()
			}
			return nil, err
		}
	}
	slots := make([]*muxPending, len(names))
	ids := make([]uint16, len(names))
	m.wmu.Lock()
	wb := (*m.wbuf)[:0]
	// All slots are stamped at batch start: the burst's queries share one
	// segment and its responses one coalesced segment, so each query's
	// latency is the whole batch round trip (including every per-query
	// clock charge), identical across the batch.
	start := m.clock.Elapsed()
	var err error
	for i, name := range names {
		var p *muxPending
		var id uint16
		p, id, err = m.register(start)
		if err != nil {
			break
		}
		slots[i], ids[i] = p, id
		q := dnswire.NewQuery(id, name, qtype)
		if m.PadBlock > 0 {
			q.SetEDNS0(4096, false)
			if err = q.PadToBlock(m.PadBlock); err != nil {
				break
			}
		}
		m.clock.AddLatency(m.PerQueryCost)
		wb, err = q.AppendPackTCP(wb)
		if err != nil {
			break
		}
	}
	if err == nil {
		if _, werr := m.w.Write(wb); werr != nil {
			m.fail(werr)
			err = werr
		}
	}
	*m.wbuf = wb
	m.wmu.Unlock()
	if err != nil {
		for i := range names {
			if slots[i] != nil && m.deregister(ids[i]) {
				m.putSlot(slots[i])
			}
			m.release()
		}
		return nil, err
	}
	out = out[:0]
	var firstErr error
	for i := range names {
		res, err := m.wait(ctx, slots[i], ids[i])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			out = append(out, Result{})
			continue
		}
		out = append(out, *res)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// readLoop is the session's demux reader: it owns the stream's read side and
// its own pooled scratch, parses each response, and delivers it — with the
// per-query virtual latency computed here, where the clock advance of the
// read is observable — to the matching rendezvous slot. It exits on the
// first read or parse error, failing every in-flight query.
//
//doelint:hotpath
func (m *Mux) readLoop() {
	rbuf := bufpool.Get(512)
	defer bufpool.Put(rbuf)
	for {
		raw, err := dnswire.ReadTCPAppend(m.r, (*rbuf)[:0])
		if err != nil {
			m.fail(err)
			return
		}
		*rbuf = raw
		msg, err := dnswire.Unpack(raw)
		if err != nil {
			// Framing desync is unrecoverable: every later response would
			// be misparsed too.
			m.fail(err)
			return
		}
		now := m.clock.Elapsed()
		m.mu.Lock()
		p := m.inflight[msg.ID]
		if p != nil {
			delete(m.inflight, msg.ID)
			// Send while holding mu: the channel has capacity 1 and exactly
			// one sender, so this never blocks, and deregister observing a
			// missing entry can rely on the delivery being buffered.
			p.ch <- muxDelivery{msg: msg, lat: now - p.start}
		}
		// Responses to queries abandoned by cancellation are dropped.
		m.mu.Unlock()
	}
}

// fail marks the session dead and delivers err to every in-flight query.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	if m.dead == nil {
		m.dead = err
	} else {
		err = m.dead
	}
	for id, p := range m.inflight {
		delete(m.inflight, id)
		p.ch <- muxDelivery{err: err}
	}
	m.mu.Unlock()
}

// Close fails all in-flight queries with ErrClosed and rejects later ones.
// It does not close the underlying stream: the session owner does, which
// also unblocks the demux reader.
func (m *Mux) Close() error {
	m.wmu.Lock()
	defer m.wmu.Unlock()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	m.fail(ErrClosed)
	if m.wbuf != nil {
		bufpool.Put(m.wbuf)
		m.wbuf = nil
	}
	return nil
}
