package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listPackage is the subset of `go list -json` output the driver consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *listModule
	Error      *listError
}

type listModule struct {
	Path string
	Main bool
}

type listError struct {
	Err string
}

// unit is one main-module package moving through the driver: its metadata,
// and — once parsed — its syntax and type information. Root units (matched
// by a pattern) are analyzed and may report findings; dep-only units are
// walked solely to feed the call graph, and with a fact cache they reduce
// to a stored summary without being parsed at all.
type unit struct {
	lp    *listPackage
	root  bool
	files []*ast.File
	tpkg  *types.Package
	info  *types.Info
}

// Run loads the packages matched by patterns (resolved by the go tool from
// dir), type-checks every package of the main module from source, builds
// the module-wide call graph with propagated facts, runs the enabled
// analyzers over the root packages, applies //doelint: directives, and
// returns the surviving findings sorted by position.
//
// Dependencies — standard library and module-internal alike — are imported
// from compiler export data produced by `go list -export`, so the whole
// module loads in well under a second and no dependency outside the
// standard library is needed. Main-module packages pulled in only as
// dependencies still contribute facts to the graph (that is the point of
// the interprocedural checks), but never report findings of their own.
func Run(dir string, patterns []string, cfg *Config) ([]Finding, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	if err := cfg.validateChecks(); err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	byPath := make(map[string]*listPackage, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		p, ok := byPath[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	})

	var analyzers []*Analyzer
	for _, a := range registry {
		if cfg.checkEnabled(a.Name) {
			analyzers = append(analyzers, a)
		}
	}

	// Deduplicate: the same package can surface more than once when it is
	// matched by overlapping patterns or appears both as a root and as a
	// dependency of another root. One unit per import path, and it is a
	// root if any appearance was.
	units := make([]*unit, 0, len(pkgs))
	index := make(map[string]*unit, len(pkgs))
	for _, lp := range pkgs {
		if lp.Standard || lp.Module == nil || !lp.Module.Main {
			continue
		}
		if u, ok := index[lp.ImportPath]; ok {
			u.root = u.root || !lp.DepOnly
			continue
		}
		u := &unit{lp: lp, root: !lp.DepOnly}
		units = append(units, u)
		index[lp.ImportPath] = u
	}

	var cache *factCache
	if cfg.FactCacheDir != "" {
		cache = &factCache{dir: cfg.FactCacheDir}
	}

	dirs := newDirectiveIndex()
	builder := newGraphBuilder(fset, dirs.allow)
	var findings []Finding
	roots := 0
	for _, u := range units {
		lp := u.lp
		if u.root {
			roots++
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		hash := ""
		if cache != nil && !u.root {
			if hash, err = hashFiles(lp.Dir, lp.GoFiles); err == nil {
				if ps := cache.load(lp.ImportPath, hash); ps != nil {
					builder.absorb(ps)
					continue
				}
			}
		}
		if err := loadUnit(fset, imp, u); err != nil {
			return nil, err
		}
		// Directives first: the graph builder consults allow cells while
		// computing facts, so a justified suppression at a source never
		// taints callers.
		for _, f := range u.files {
			bad := parseDirectives(fset, f, dirs)
			if u.root {
				findings = append(findings, bad...)
			}
		}
		builder.addPackage(lp.ImportPath, u.files, u.info)
		if cache != nil && !u.root && hash != "" {
			cache.store(builder.g.summarize(lp.ImportPath, hash))
		}
	}

	if roots == 0 {
		return nil, fmt.Errorf("lint: patterns %v matched no main-module packages in %s", patterns, dir)
	}

	graph := builder.finish()
	for _, u := range units {
		if !u.root || u.files == nil {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    u.files,
				Pkg:      u.tpkg,
				Info:     u.info,
				Config:   cfg,
				Graph:    graph,
				Dirs:     dirs,
				findings: &findings,
			}
			a.Run(pass)
		}
	}

	findings = dirs.allow.filter(findings)
	relativize(findings, dir)
	sortFindings(findings)
	findings = dedupeFindings(findings)
	return findings, nil
}

// loadUnit parses and type-checks one package from source.
func loadUnit(fset *token.FileSet, imp types.Importer, u *unit) error {
	files, err := parseFiles(fset, u.lp)
	if err != nil {
		return err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, _ := conf.Check(u.lp.ImportPath, fset, files, info)
	if typeErr != nil {
		return fmt.Errorf("lint: type-checking %s: %w", u.lp.ImportPath, typeErr)
	}
	u.files, u.tpkg, u.info = files, tpkg, info
	return nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// dedupeFindings drops exact duplicates (same position, check, and
// message) from the sorted slice — the belt to the unit map's suspenders,
// and what keeps output stable if a future loader change reintroduces
// double-loaded packages.
func dedupeFindings(findings []Finding) []Finding {
	out := findings[:0]
	for i, f := range findings {
		if i > 0 {
			p := findings[i-1]
			if p.File == f.File && p.Line == f.Line && p.Col == f.Col &&
				p.Check == f.Check && p.Message == f.Message {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

// goList shells out to the go tool for package metadata and export data.
// The go tool is the one dependency a Go build already has; -export makes it
// write compiler export data for every listed package into the build cache
// and report the file paths, which is how the driver resolves imports
// without golang.org/x/tools.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.Bytes())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

func parseFiles(fset *token.FileSet, lp *listPackage) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// relativize rewrites finding paths relative to dir when possible, for
// stable output independent of where the module happens to be checked out.
func relativize(findings []Finding, dir string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	for i := range findings {
		if rel, err := filepath.Rel(abs, findings[i].File); err == nil && !filepath.IsAbs(rel) &&
			rel != ".." && !((len(rel) > 2) && rel[:3] == ".."+string(filepath.Separator)) {
			findings[i].File = rel
		}
	}
}
