// Reachability: §4 in miniature. A resolver offers all three transports; a
// SOCKS proxy network provides vantage points in different countries, one
// behind a port-53 filter, one behind a censoring middlebox and one behind
// a TLS-inspecting firewall. The example runs the Fig. 7 workflow from each
// node and prints the Table 4-style classification plus the interception
// evidence of Finding 2.3.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"dnsencryption.info/doe/internal/analysis"
	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/proxy"
	"dnsencryption.info/doe/internal/vantage"
)

func main() {
	world := netsim.NewWorld(11)
	reg := func(prefix, cc string, asn int, name string) {
		world.Geo.Register(netip.MustParsePrefix(prefix), geo.Location{Country: cc, ASN: asn, ASName: name})
	}
	reg("172.16.0.0/16", "US", 1, "Measurement Lab")
	reg("192.0.2.0/24", "US", 2, "Resolver Co")
	reg("10.1.0.0/24", "DE", 100, "Clean ISP")
	reg("10.2.0.0/24", "ID", 101, "Filtering ISP")
	reg("10.3.0.0/24", "CN", 102, "Censored ISP")
	reg("10.4.0.0/24", "BR", 103, "Corporate network with DPI")

	resolver := netip.MustParseAddr("192.0.2.53")
	expected := netip.MustParseAddr("203.0.113.9")
	zone := dnsserver.NewZone("probe.example.test")
	zone.WildcardA = expected

	ca, err := certs.NewCA("Example Root", true)
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := ca.Issue(certs.LeafOptions{CommonName: "dns.resolverco.test", IPs: []netip.Addr{resolver}})
	if err != nil {
		log.Fatal(err)
	}
	world.RegisterDatagram(resolver, 53, dnsserver.DatagramHandler(zone))
	world.RegisterStream(resolver, 53, func(c *netsim.Conn) { defer c.Close(); dnsserver.ServeStream(c, zone) })
	dot.Serve(world, resolver, leaf, zone, time.Millisecond)
	doh.Serve(world, resolver, leaf, &doh.Server{Handler: zone})

	// Middleboxes.
	world.AddPolicy(&netsim.PortFilter{
		ClientPrefixes: []netip.Prefix{netip.MustParsePrefix("10.2.0.0/24")},
		Port:           53,
	})
	world.AddPolicy(&netsim.Censor{
		Countries: map[string]bool{"CN": true},
		BlockIPs:  map[netip.Addr]bool{resolver: true},
		BlockPorts: map[uint16]bool{
			443: true,
		},
		Blackhole: true,
	})
	dpiCA, err := certs.NewCA("Corporate DPI CA", false)
	if err != nil {
		log.Fatal(err)
	}
	world.AddPolicy(netsim.NewTLSInterceptor(dpiCA,
		[]netip.Prefix{netip.MustParsePrefix("10.4.0.0/24")}, 853, 443))

	// The proxy network.
	network := proxy.NewNetwork(world, "example-proxies", netip.MustParseAddr("172.16.1.1"), 3)
	for _, n := range []struct {
		id, addr, cc string
		asn          int
		as           string
	}{
		{"clean-de", "10.1.0.5", "DE", 100, "Clean ISP"},
		{"filtered-id", "10.2.0.5", "ID", 101, "Filtering ISP"},
		{"censored-cn", "10.3.0.5", "CN", 102, "Censored ISP"},
		{"dpi-br", "10.4.0.5", "BR", 103, "Corporate network with DPI"},
	} {
		network.AddNode(proxy.ExitNode{
			ID: n.id, Addr: netip.MustParseAddr(n.addr),
			Country: n.cc, ASN: n.asn, ASName: n.as, Lifetime: time.Hour,
		})
	}

	platform := &vantage.Platform{
		Network:   network,
		From:      netip.MustParseAddr("172.16.0.9"),
		Roots:     certs.Pool(ca),
		ProbeZone: "probe.example.test",
		ExpectedA: expected,
		MinUptime: time.Minute,
	}
	target := vantage.Target{
		Name:    "resolverco",
		DNS:     resolver,
		DoT:     resolver,
		DoH:     doh.Template{Host: "dns.resolverco.test", Path: doh.DefaultPath},
		DoHAddr: resolver,
	}

	results := platform.Campaign([]vantage.Target{target}, 4)
	table := &analysis.Table{
		Title:   "Reachability per vantage point",
		Columns: []string{"Node", "CC", "Proto", "Outcome", "Intercepted", "Error"},
	}
	for _, r := range results {
		errStr := r.Err
		if len(errStr) > 40 {
			errStr = errStr[:37] + "..."
		}
		table.AddRow(r.NodeID, r.Country, string(r.Proto), r.Outcome, r.Intercepted, errStr)
	}
	fmt.Println(table.Render())

	for _, r := range vantage.InterceptedResults(results) {
		fmt.Printf("TLS interception: node %s (%s) — resolver cert re-signed by %q, lookup still answered\n",
			r.NodeID, r.Country, r.IssuerCN)
	}
}
