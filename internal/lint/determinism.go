package lint

import (
	"go/ast"
	"go/types"
)

// analyzerDeterminism flags reads of ambient nondeterminism — the global
// math/rand generator and the wall clock — inside packages declared
// deterministic (Config.DeterministicPackages). The simulation core must
// produce identical results for a given seed; randomness has to flow from a
// seeded *rand.Rand and time from the simulated clock. Constructor calls
// (rand.New, rand.NewSource, rand.NewZipf) are fine: they are how seeded
// generators get built.
var analyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "no global math/rand or wall-clock reads in deterministic packages",
	Run:  runDeterminism,
}

// randConstructors are math/rand top-level functions that construct seeded
// state rather than consult the global generator.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// wallClockFuncs are time package functions that read or schedule against
// the wall clock.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

func runDeterminism(pass *Pass) {
	if !pass.Config.IsDeterministic(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if !randConstructors[sel.Sel.Name] {
					pass.Reportf(call.Pos(),
						"global rand.%s in deterministic package %s; draw from a seeded *rand.Rand instead",
						sel.Sel.Name, pass.Pkg.Path())
				}
			case "time":
				if wallClockFuncs[sel.Sel.Name] {
					pass.Reportf(call.Pos(),
						"wall-clock time.%s in deterministic package %s; derive time from the simulation clock",
						sel.Sel.Name, pass.Pkg.Path())
				}
			}
			return true
		})
	}
}
