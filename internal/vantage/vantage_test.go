package vantage

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/certs"
	"dnsencryption.info/doe/internal/dnsserver"
	"dnsencryption.info/doe/internal/doh"
	"dnsencryption.info/doe/internal/dot"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
	"dnsencryption.info/doe/internal/proxy"
)

// fixture is a miniature of the study world: one resolver offering all
// three protocols, a proxy network with nodes behind different middleboxes.
type fixture struct {
	world    *netsim.World
	ca       *certs.CA
	platform *Platform
	target   Target
	mitm     *netsim.TLSInterceptor
}

var (
	measureIP  = netip.MustParseAddr("172.16.0.9")
	superIP    = netip.MustParseAddr("172.16.0.1")
	resolverIP = netip.MustParseAddr("9.9.9.9")
	expectedA  = netip.MustParseAddr("203.0.113.77")

	nodeClean    = netip.MustParseAddr("10.10.0.5") // US, unfiltered
	nodeFiltered = netip.MustParseAddr("10.11.0.5") // US, port-53 filtered
	nodeCensored = netip.MustParseAddr("10.12.0.5") // CN, censored
	nodeMITM     = netip.MustParseAddr("10.13.0.5") // BR, TLS-intercepted
	nodeConflict = netip.MustParseAddr("10.14.0.5") // ID, 9.9.9.9 conflict
)

func newFixture(t *testing.T) *fixture {
	t.Helper()
	w := netsim.NewWorld(41)
	w.JitterFrac = 0
	reg := func(prefix, cc string, asn int, as string) {
		w.Geo.Register(netip.MustParsePrefix(prefix), geo.Location{Country: cc, ASN: asn, ASName: as})
	}
	reg("172.16.0.0/16", "US", 1, "Lab")
	reg("9.9.9.0/24", "US", 2, "Resolver Co")
	reg("10.10.0.0/16", "US", 100, "Clean ISP")
	reg("10.11.0.0/16", "US", 101, "Filtering ISP")
	reg("10.12.0.0/16", "CN", 102, "Censored ISP")
	reg("10.13.0.0/16", "BR", 103, "Telefnica Brazil S.A")
	reg("10.14.0.0/16", "ID", 104, "PT Telekomunikasi Selular")

	ca, err := certs.NewCA("DoE Root", true)
	if err != nil {
		t.Fatal(err)
	}

	zone := dnsserver.NewZone("probe.example.org")
	zone.WildcardA = expectedA
	// Clear-text DNS over TCP and UDP.
	w.RegisterDatagram(resolverIP, 53, dnsserver.DatagramHandler(zone))
	w.RegisterStream(resolverIP, 53, func(conn *netsim.Conn) {
		defer conn.Close()
		dnsserver.ServeStream(conn, zone)
	})
	leaf, err := ca.Issue(certs.LeafOptions{
		CommonName: "dns.resolverco.example",
		IPs:        []netip.Addr{resolverIP},
	})
	if err != nil {
		t.Fatal(err)
	}
	dot.Serve(w, resolverIP, leaf, zone, 0)
	doh.Serve(w, resolverIP, leaf, &doh.Server{Handler: zone})

	// Middleboxes.
	w.AddPolicy(&netsim.PortFilter{
		ClientPrefixes: []netip.Prefix{netip.MustParsePrefix("10.11.0.0/16")},
		Port:           53,
	})
	w.AddPolicy(&netsim.Censor{
		Countries: map[string]bool{"CN": true},
		BlockIPs:  map[netip.Addr]bool{resolverIP: true},
		BlockPorts: map[uint16]bool{
			doh.Port: true,
		},
		Blackhole: true,
	})
	dpiCA, err := certs.NewCA("SonicWall Firewall DPI-SSL", false)
	if err != nil {
		t.Fatal(err)
	}
	mitm := netsim.NewTLSInterceptor(dpiCA,
		[]netip.Prefix{netip.MustParsePrefix("10.13.0.0/16")}, dot.Port, doh.Port)
	w.AddPolicy(mitm)
	w.AddPolicy(&netsim.ConflictDevice{
		ClientPrefixes: []netip.Prefix{netip.MustParsePrefix("10.14.0.0/16")},
		ConflictIP:     resolverIP,
		Kind:           netsim.DeviceRouter,
		OpenPorts:      map[uint16]string{80: "<title>MikroTik RouterOS</title>"},
	})

	network := proxy.NewNetwork(w, "testrack", superIP, 5)
	add := func(id string, addr netip.Addr, cc string, asn int, as string) {
		network.AddNode(proxy.ExitNode{ID: id, Addr: addr, Country: cc, ASN: asn, ASName: as, Lifetime: time.Hour})
	}
	add("clean", nodeClean, "US", 100, "Clean ISP")
	add("filtered", nodeFiltered, "US", 101, "Filtering ISP")
	add("censored", nodeCensored, "CN", 102, "Censored ISP")
	add("mitm", nodeMITM, "BR", 103, "Telefnica Brazil S.A")
	add("conflict", nodeConflict, "ID", 104, "PT Telekomunikasi Selular")

	platform := &Platform{
		Network:   network,
		From:      measureIP,
		Roots:     certs.Pool(ca),
		ProbeZone: "probe.example.org",
		ExpectedA: expectedA,
		MinUptime: time.Minute,
	}
	target := Target{
		Name:    "resolverco",
		DNS:     resolverIP,
		DoT:     resolverIP,
		DoH:     doh.Template{Host: "dns.resolverco.example", Path: doh.DefaultPath},
		DoHAddr: resolverIP,
	}
	return &fixture{world: w, ca: ca, platform: platform, target: target, mitm: mitm}
}

func (f *fixture) node(t *testing.T, id string) proxy.ExitNode {
	t.Helper()
	for _, n := range f.platform.Network.Nodes() {
		if n.ID == id {
			return n
		}
	}
	t.Fatalf("node %q missing", id)
	return proxy.ExitNode{}
}

func outcomes(results []Result) map[Proto]Outcome {
	m := map[Proto]Outcome{}
	for _, r := range results {
		m[r.Proto] = r.Outcome
	}
	return m
}

func TestCleanNodeAllCorrect(t *testing.T) {
	f := newFixture(t)
	res := f.platform.TestReachability(f.node(t, "clean"), []Target{f.target})
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.Outcome != Correct {
			t.Errorf("%s: %v (%s)", r.Proto, r.Outcome, r.Err)
		}
		if r.Intercepted {
			t.Errorf("%s wrongly intercepted", r.Proto)
		}
	}
}

func TestPort53FilteredNode(t *testing.T) {
	f := newFixture(t)
	got := outcomes(f.platform.TestReachability(f.node(t, "filtered"), []Target{f.target}))
	if got[ProtoDNS] != Failed {
		t.Errorf("dns = %v, want failed (port 53 filtered)", got[ProtoDNS])
	}
	if got[ProtoDoT] != Correct || got[ProtoDoH] != Correct {
		t.Errorf("dot/doh = %v/%v, want correct (Finding 2.1: encrypted ports pass)", got[ProtoDoT], got[ProtoDoH])
	}
}

func TestCensoredNodeDoHBlocked(t *testing.T) {
	f := newFixture(t)
	got := outcomes(f.platform.TestReachability(f.node(t, "censored"), []Target{f.target}))
	if got[ProtoDoH] != Failed {
		t.Errorf("doh = %v, want failed (censorship, Finding 2.2)", got[ProtoDoH])
	}
	if got[ProtoDNS] != Correct || got[ProtoDoT] != Correct {
		t.Errorf("dns/dot = %v/%v, want correct (only port 443 blocked)", got[ProtoDNS], got[ProtoDoT])
	}
}

func TestMITMNodeInterceptsDoTBreaksDoH(t *testing.T) {
	f := newFixture(t)
	results := f.platform.TestReachability(f.node(t, "mitm"), []Target{f.target})
	got := outcomes(results)
	// Opportunistic DoT proceeds and gets the right answer — but is
	// flagged as intercepted, with the DPI CA visible (Finding 2.3).
	if got[ProtoDoT] != Correct {
		t.Errorf("dot = %v, want correct", got[ProtoDoT])
	}
	intercepted := InterceptedResults(results)
	if len(intercepted) != 1 || intercepted[0].Proto != ProtoDoT {
		t.Fatalf("intercepted = %+v", intercepted)
	}
	if intercepted[0].IssuerCN != "SonicWall Firewall DPI-SSL" {
		t.Errorf("issuer = %q", intercepted[0].IssuerCN)
	}
	// Strict DoH aborts on the forged certificate.
	if got[ProtoDoH] != Failed {
		t.Errorf("doh = %v, want failed", got[ProtoDoH])
	}
}

func TestConflictNodeForensics(t *testing.T) {
	f := newFixture(t)
	node := f.node(t, "conflict")
	results := f.platform.TestReachability(node, []Target{f.target})
	got := outcomes(results)
	if got[ProtoDNS] != Failed || got[ProtoDoT] != Failed {
		t.Errorf("dns/dot = %v/%v, want failed (address conflict)", got[ProtoDNS], got[ProtoDoT])
	}
	failed := FailedNodes(results, "resolverco", ProtoDoT)
	if len(failed) != 1 || failed[0] != "conflict" {
		t.Errorf("failed nodes = %v", failed)
	}
	probe := f.platform.ProbePorts(node, resolverIP, Table5Ports)
	if len(probe.Open) != 1 || probe.Open[0] != 80 {
		t.Errorf("open ports = %v, want [80]", probe.Open)
	}
	if !strings.Contains(probe.Page, "MikroTik") {
		t.Errorf("page = %q", probe.Page)
	}
	if IdentifyDevice(probe) != "router" {
		t.Errorf("device = %q", IdentifyDevice(probe))
	}
	genuine := GenuineProfile{OpenPorts: []uint16{53, 80, 443}}
	if MatchesGenuine(probe, genuine) {
		t.Error("conflicted device matched the genuine resolver profile")
	}
}

func TestCampaignAndTally(t *testing.T) {
	f := newFixture(t)
	results := f.platform.Campaign([]Target{f.target}, 4)
	tally := TallyResults(results)["resolverco"]
	// 5 nodes: DNS fails on filtered+conflict; DoT fails on conflict;
	// DoH fails on censored+mitm+conflict.
	if tally[ProtoDNS].Failed != 2 || tally[ProtoDNS].Correct != 3 {
		t.Errorf("dns tally = %+v", tally[ProtoDNS])
	}
	if tally[ProtoDoT].Failed != 1 || tally[ProtoDoT].Correct != 4 {
		t.Errorf("dot tally = %+v", tally[ProtoDoT])
	}
	if tally[ProtoDoH].Failed != 3 || tally[ProtoDoH].Correct != 2 {
		t.Errorf("doh tally = %+v", tally[ProtoDoH])
	}
	c, i, fl := tally[ProtoDoT].Rates()
	if c+i+fl < 0.999 || c+i+fl > 1.001 {
		t.Errorf("rates don't sum to 1: %v %v %v", c, i, fl)
	}
}

func TestPerformanceReusedOverheadSmall(t *testing.T) {
	f := newFixture(t)
	sample, err := f.platform.MeasurePerformance(f.node(t, "clean"), f.target, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sample.DNSMedianMS <= 0 || sample.DoTMedianMS <= 0 || sample.DoHMedianMS <= 0 {
		t.Fatalf("medians = %+v", sample)
	}
	// With connection reuse, encrypted overhead is a few ms (crypto cost),
	// far below one RTT (the US->resolver RTT here is ≥ 16ms).
	if oh := sample.DoTOverheadMS(); oh < 0 || oh > 15 {
		t.Errorf("DoT overhead = %vms, want small positive", oh)
	}
	if oh := sample.DoHOverheadMS(); oh < 0 || oh > 15 {
		t.Errorf("DoH overhead = %vms, want small positive", oh)
	}
}

func TestNoReuseOverheadLarger(t *testing.T) {
	f := newFixture(t)
	sample, err := MeasureNoReuse(f.world, "US", measureIP, f.target, "probe.example.org", certs.Pool(f.ca), 10)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := f.platform.MeasurePerformance(f.node(t, "clean"), f.target, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Without reuse every query pays TCP+TLS setup: the overhead relative
	// to DNS/TCP must exceed the reused-connection overhead (§4.3).
	if sample.DoTOverheadMS() <= reused.DoTOverheadMS() {
		t.Errorf("no-reuse DoT overhead %v <= reused %v", sample.DoTOverheadMS(), reused.DoTOverheadMS())
	}
	if sample.DoHOverheadMS() <= reused.DoHOverheadMS() {
		t.Errorf("no-reuse DoH overhead %v <= reused %v", sample.DoHOverheadMS(), reused.DoHOverheadMS())
	}
}

func TestAggregateByCountry(t *testing.T) {
	samples := []PerfSample{
		{NodeID: "a", Country: "US", DNSMedianMS: 20, DoTMedianMS: 25, DoHMedianMS: 28},
		{NodeID: "b", Country: "US", DNSMedianMS: 22, DoTMedianMS: 29, DoHMedianMS: 27},
		{NodeID: "c", Country: "IN", DNSMedianMS: 120, DoTMedianMS: 90, DoHMedianMS: 80},
	}
	agg := AggregateByCountry(samples)
	if len(agg) != 2 || agg[0].Country != "US" || agg[0].Clients != 2 {
		t.Fatalf("agg = %+v", agg)
	}
	if agg[0].DoTAvgMS != 6 {
		t.Errorf("US DoT avg = %v, want 6", agg[0].DoTAvgMS)
	}
	// India can be *faster* over encrypted transports, as the paper finds.
	if agg[1].DoTAvgMS >= 0 {
		t.Errorf("IN DoT avg = %v, want negative", agg[1].DoTAvgMS)
	}
	dotAvg, dotMed, dohAvg, dohMed := GlobalOverheads(samples)
	if dotAvg >= 10 || dotMed <= 0 || dohAvg >= 10 || dohMed <= 0 {
		t.Errorf("global overheads = %v %v %v %v", dotAvg, dotMed, dohAvg, dohMed)
	}
}

func TestUniqueNamesAreUnique(t *testing.T) {
	f := newFixture(t)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		n := f.platform.UniqueName("Node_X")
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		if strings.ContainsAny(n, "_ABCDEFGHIJKLMNOPQRSTUVWXYZ") {
			t.Fatalf("name %q not canonical", n)
		}
		seen[n] = true
	}
}

func TestUsableNodeFiltersExpiring(t *testing.T) {
	f := newFixture(t)
	f.platform.Network.AddNode(proxy.ExitNode{
		ID: "dying", Addr: netip.MustParseAddr("10.10.0.99"), Country: "US", Lifetime: time.Second,
	})
	if f.platform.UsableNode(proxy.ExitNode{ID: "dying"}) {
		t.Error("expiring node considered usable")
	}
	if !f.platform.UsableNode(f.node(t, "clean")) {
		t.Error("healthy node rejected")
	}
}

func TestOutcomeString(t *testing.T) {
	if Correct.String() != "correct" || Incorrect.String() != "incorrect" || Failed.String() != "failed" {
		t.Error("Outcome.String mismatch")
	}
}

func TestPlatformDisruptionDropped(t *testing.T) {
	f := newFixture(t)
	// Exhaust a node's session budget so further dials are platform
	// failures (general-failure reply), not target failures.
	f.platform.Network.PerDialCost = time.Hour
	f.platform.Network.AddNode(proxy.ExitNode{
		ID: "dying2", Addr: netip.MustParseAddr("10.10.0.98"), Country: "US", Lifetime: 90 * time.Minute,
	})
	node := f.node(t, "dying2")
	// First dial consumes the whole budget...
	if c, err := f.platform.Network.Dial(f.platform.From, "dying2", resolverIP, 53); err == nil {
		c.Close()
	}
	// ...so the reachability test hits platform disruption on every leg.
	results := f.platform.TestReachability(node, []Target{f.target})
	dropped := 0
	for _, r := range results {
		if r.Dropped {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatalf("no dropped results: %+v", results)
	}
	// Dropped measurements must not contaminate Table 4.
	tally := TallyResults(results)
	for resolver, byProto := range tally {
		for proto, tl := range byProto {
			if tl.Failed > 0 {
				t.Errorf("%s/%s counts %d platform failures as protocol failures", resolver, proto, tl.Failed)
			}
		}
	}
	// Nor the Table 5 candidate list.
	if failed := FailedNodes(results, "resolverco", ProtoDoT); len(failed) != 0 {
		t.Errorf("dropped node listed as failed: %v", failed)
	}
}

func TestIdentifyDeviceVariants(t *testing.T) {
	cases := []struct {
		probe PortProbe
		want  string
	}{
		{PortProbe{Page: "<script src=coinhive.min.js>"}, "cryptojacked router"},
		{PortProbe{Page: "<title>RouterOS</title>"}, "router"},
		{PortProbe{Server: "MikroTik"}, "router"},
		{PortProbe{Page: "Powerbox Gvt Modem"}, "modem"},
		{PortProbe{Page: "please login to continue"}, "authentication system"},
		{PortProbe{Page: "hello world"}, "unknown web device"},
		{PortProbe{Open: []uint16{22}}, "unidentified host"},
		{PortProbe{}, "silent (blackhole or internal routing)"},
	}
	for _, c := range cases {
		if got := IdentifyDevice(c.probe); got != c.want {
			t.Errorf("IdentifyDevice(%+v) = %q, want %q", c.probe, got, c.want)
		}
	}
}
