package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dnsencryption.info/doe/internal/lint"
)

// lintFixtures writes files (keyed by module-relative path) into a fresh
// module and runs the full driver over it — go list, export data, type
// checking, analyzers, directives — exactly as doelint does on the real
// repository.
func lintFixtures(t *testing.T, cfg *lint.Config, files map[string]string) []lint.Finding {
	t.Helper()
	dir := t.TempDir()
	mod := "module fixture.example/m\n\ngo 1.22\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(mod), 0o644); err != nil {
		t.Fatal(err)
	}
	for rel, content := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	findings, err := lint.Run(dir, []string{"./..."}, cfg)
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	return findings
}

// byCheck filters findings to one check and renders them as file:line for
// compact assertions.
func byCheck(findings []lint.Finding, check string) []string {
	var out []string
	for _, f := range findings {
		if f.Check == check {
			out = append(out, fmt.Sprintf("%s:%d", filepath.ToSlash(f.File), f.Line))
		}
	}
	return out
}

func wantFindings(t *testing.T, findings []lint.Finding, check string, want []string) {
	t.Helper()
	got := byCheck(findings, check)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("%s findings = %v, want %v\nall: %v", check, got, want, findings)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.DeterministicPackages = []string{"det"}
	findings := lintFixtures(t, cfg, map[string]string{
		// True positives: global rand and wall clock in a deterministic
		// package; one suppressed by directive.
		"det/det.go": `package det

import (
	"math/rand"
	"time"
)

func Bad() int {
	n := rand.Intn(10)                   // line 9: finding
	_ = time.Now()                       // line 10: finding
	_ = time.Since(time.Unix(0, 0))      // line 11: finding
	return n
}

func Allowed() time.Time {
	return time.Now() //doelint:allow determinism -- fixture: deliberate wall-clock read
}

func Seeded() int {
	rng := rand.New(rand.NewSource(42)) // constructors are fine
	return rng.Intn(10)
}
`,
		// True negative: same code outside the deterministic set.
		"free/free.go": `package free

import "time"

func Fine() time.Time { return time.Now() }
`,
	})
	wantFindings(t, findings, "determinism", []string{
		"det/det.go:9", "det/det.go:10", "det/det.go:11",
	})
}

func TestSimsleep(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.SimulationPackages = []string{"sim"}
	findings := lintFixtures(t, cfg, map[string]string{
		// True positives: real blocking calls in a simulation package;
		// one suppressed by directive. Non-blocking time uses (Duration
		// arithmetic, timers the package never starts) stay silent.
		"sim/sim.go": `package sim

import "time"

func Bad(ch chan int) {
	time.Sleep(time.Millisecond) // line 6: finding
	select {
	case <-ch:
	case <-time.After(time.Second): // line 9: finding
	}
}

func Allowed() {
	time.Sleep(time.Millisecond) //doelint:allow simsleep -- fixture: deliberate real sleep
}

func Fine() time.Duration {
	return 3 * time.Millisecond
}
`,
		// True negative: the same blocking calls outside the simulation
		// set (real-time harness code may sleep).
		"harness/harness.go": `package harness

import "time"

func Wait() { time.Sleep(time.Millisecond) }
`,
	})
	wantFindings(t, findings, "simsleep", []string{"sim/sim.go:6", "sim/sim.go:9"})
}

func TestObsclock(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.ObservabilityPackages = []string{"obs"}
	findings := lintFixtures(t, cfg, map[string]string{
		// True positives: wall-clock reads and blocking in an
		// observability package; one suppressed by directive. Duration
		// arithmetic stays silent — telemetry is built on virtual deltas.
		"obs/obs.go": `package obs

import "time"

func Bad() time.Duration {
	start := time.Now()             // line 6: finding
	time.Sleep(time.Millisecond)    // line 7: finding
	return time.Since(start)        // line 8: finding
}

func Allowed() time.Time {
	return time.Now() //doelint:allow obsclock -- fixture: deliberate wall-clock read
}

func Fine(d time.Duration) time.Duration {
	return d + 3*time.Millisecond
}
`,
		// True negative: the same reads outside the observability set
		// (CLI harness code may time itself).
		"cli/cli.go": `package cli

import "time"

func Stamp() time.Time { return time.Now() }
`,
	})
	wantFindings(t, findings, "obsclock", []string{"obs/obs.go:6", "obs/obs.go:7", "obs/obs.go:8"})
}

// TestObsclockMemStatsSampler pins the contract for the volatile MemStats
// sampler: reading runtime.MemStats from an observability package is fine
// (it is not a clock), but pacing the sampler with time.NewTicker or
// stamping samples with time.Now inside the observability set is exactly
// what obsclock must flag — samplers run at exposure time, driven by the
// scrape loop outside the package, never on the virtual-clock path.
func TestObsclockMemStatsSampler(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.ObservabilityPackages = []string{"obs"}
	findings := lintFixtures(t, cfg, map[string]string{
		"obs/memstats.go": `package obs

import (
	"runtime"
	"time"
)

var heapHighWater uint64

func Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms) // fine: volatile memory reading, not a clock
	if ms.HeapAlloc > heapHighWater {
		heapHighWater = ms.HeapAlloc
	}
}

func BadSelfPacedSampler() *time.Ticker {
	return time.NewTicker(time.Second) // line 19: finding
}

func BadStampedSample() int64 {
	return time.Now().UnixNano() // line 23: finding
}
`,
	})
	wantFindings(t, findings, "obsclock", []string{"obs/memstats.go:19", "obs/memstats.go:23"})
}

func TestErrwrap(t *testing.T) {
	findings := lintFixtures(t, lint.DefaultConfig(), map[string]string{
		"wrap/wrap.go": `package wrap

import (
	"errors"
	"fmt"
)

var ErrBase = errors.New("base")

func Bad(err error) error {
	return fmt.Errorf("doing thing: %v", err) // line 11: finding
}

func HalfWrapped(err error) error {
	return fmt.Errorf("%w: %v", ErrBase, err) // line 15: finding (2 errors, 1 %w)
}

func Allowed(err error) error {
	return fmt.Errorf("lossy on purpose: %v", err) //doelint:allow errwrap -- fixture: message intentionally flattens
}

func Good(err error) error {
	return fmt.Errorf("doing thing: %w", err)
}

func BothWrapped(err error) error {
	return fmt.Errorf("%w: %w", ErrBase, err)
}

func NoError(n int) error {
	return fmt.Errorf("count %d of %s", n, "things")
}

func NilArg() error {
	return fmt.Errorf("value %v", nil)
}
`,
	})
	wantFindings(t, findings, "errwrap", []string{"wrap/wrap.go:11", "wrap/wrap.go:15"})
}

func TestConnclose(t *testing.T) {
	findings := lintFixtures(t, lint.DefaultConfig(), map[string]string{
		"conns/conns.go": `package conns

import "net"

func Leaky(addr string) error {
	conn, err := net.Dial("tcp", addr) // line 6: finding (never closed)
	if err != nil {
		return err
	}
	_ = conn.SetDeadline
	return nil
}

func EarlyReturn(addr string, bail bool) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	if bail {
		return nil // line 20: finding (close below is skipped)
	}
	return conn.Close()
}

func Allowed(addr string) error {
	conn, err := net.Dial("tcp", addr) //doelint:allow connclose -- fixture: closed by the caller via package registry
	if err != nil {
		return err
	}
	_ = conn.RemoteAddr()
	return nil
}

func Deferred(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return nil
}

func Transferred(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return conn, nil
}

func GoroutineOwned(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	go func() {
		defer conn.Close()
		buf := make([]byte, 1)
		conn.Read(buf)
	}()
	return nil
}
`,
	})
	wantFindings(t, findings, "connclose", []string{"conns/conns.go:6", "conns/conns.go:20"})
}

func TestLockbalance(t *testing.T) {
	findings := lintFixtures(t, lint.DefaultConfig(), map[string]string{
		"locks/locks.go": `package locks

import "sync"

type box struct {
	mu sync.Mutex
	ro sync.RWMutex
	n  int
}

func (b *box) Bad() {
	b.mu.Lock() // line 12: finding
	b.n++
}

func (b *box) BadRead() int {
	b.ro.RLock() // line 17: finding
	return b.n
}

func (b *box) Allowed() {
	//doelint:allow lockbalance -- fixture: unlocked by the monitor goroutine
	b.mu.Lock()
	b.n++
}

func (b *box) Good() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

func (b *box) GoodInline() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *box) GoodClosure() {
	b.mu.Lock()
	defer func() { b.mu.Unlock() }()
	b.n++
}

func (b *box) GoodRead() int {
	b.ro.RLock()
	defer b.ro.RUnlock()
	return b.n
}
`,
	})
	wantFindings(t, findings, "lockbalance", []string{"locks/locks.go:12", "locks/locks.go:17"})
}

func TestGoleak(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.SimulationPackages = []string{"relay"}
	findings := lintFixtures(t, cfg, map[string]string{
		"relay/relay.go": `package relay

import "net"

func Pump(ch chan int, conn net.Conn) {
	go func() {
		for { // line 7: finding (no exit: leaks when readers stop)
			ch <- 1
		}
	}()
	go func() {
		for { // line 12: finding (break only leaves the select)
			select {
			case ch <- 1:
			default:
				break
			}
		}
	}()
	go func() {
		buf := make([]byte, 1)
		for { // fine: exits via return on read error
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	go func() {
		for { // fine: unlabeled break bound to this loop
			if _, ok := <-ch; !ok {
				break
			}
		}
	}()
	go func() {
	drain:
		for { // fine: labeled break escapes the loop from inside the select
			select {
			case _, ok := <-ch:
				if !ok {
					break drain
				}
			}
		}
	}()
}

func Allowed(ch chan int) {
	go func() {
		//doelint:allow goleak -- fixture: process-lifetime ticker by design
		for {
			ch <- 1
		}
	}()
}

func Bounded(ch chan int) {
	for i := 0; i < 3; i++ { // fine: not a goroutine body
		ch <- i
	}
	go func() {
		for done := false; !done; { // fine: conditioned loop
			_, done = <-ch
		}
	}()
}
`,
		// True negative: same leak outside the simulation set.
		"daemon/daemon.go": `package daemon

func Run(ch chan int) {
	go func() {
		for {
			ch <- 1
		}
	}()
}
`,
	})
	wantFindings(t, findings, "goleak", []string{"relay/relay.go:7", "relay/relay.go:12"})
}

func TestDirectiveValidation(t *testing.T) {
	findings := lintFixtures(t, lint.DefaultConfig(), map[string]string{
		"dir/dir.go": `package dir

//doelint:allow errwrap
func A() {} // line 3: finding (no justification)

//doelint:allow nosuchcheck -- whatever
func B() {} // line 6: finding (unknown check)

//doelint:frobnicate the thing
func C() {} // line 9: finding (unknown directive)

//doelint:allow errwrap -- a legitimate, justified suppression
func D() {}
`,
	})
	wantFindings(t, findings, lint.DirectiveCheck, []string{"dir/dir.go:3", "dir/dir.go:6", "dir/dir.go:9"})
}

func TestCheckSelection(t *testing.T) {
	cfg := lint.DefaultConfig()
	cfg.Checks = []string{"lockbalance"}
	findings := lintFixtures(t, cfg, map[string]string{
		"sel/sel.go": `package sel

import (
	"fmt"
	"sync"
)

var mu sync.Mutex

func Bad(err error) error {
	mu.Lock() // finding: lockbalance runs
	return fmt.Errorf("oops: %v", err) // no finding: errwrap disabled
}
`,
	})
	wantFindings(t, findings, "lockbalance", []string{"sel/sel.go:11"})
	wantFindings(t, findings, "errwrap", nil)
}

func TestHotalloc(t *testing.T) {
	findings := lintFixtures(t, lint.DefaultConfig(), map[string]string{
		"hot/hot.go": `package hot

import "fmt"

// Exchange is the steady-state query path.
//
//doelint:hotpath
func Exchange(n int) []byte {
	buf := make([]byte, n)
	_ = fmt.Sprintf("q:%d", n)
	fill := func() []byte { return make([]byte, 4) }
	_ = fill
	_ = make([]int, n)
	//doelint:allow hotalloc -- sizing happens once per session, not per query
	hdr := make([]byte, 2)
	return append(buf, hdr...)
}

// Cold uses the same patterns unannotated: no findings.
func Cold(n int) []byte {
	_ = fmt.Sprintf("q:%d", n)
	return make([]byte, n)
}

type raw []byte

// Frame returns a named byte slice; named []byte types count.
//
//doelint:hotpath
func Frame(n int) raw {
	return make(raw, n)
}
`,
		"hot/bad.go": `package hot

//doelint:hotpath with-arguments
func Bad() {}
`,
	})
	wantFindings(t, findings, "hotalloc", []string{
		"hot/hot.go:9", "hot/hot.go:10", "hot/hot.go:11", "hot/hot.go:31",
	})
	wantFindings(t, findings, "directive", []string{"hot/bad.go:3"})
}

func TestStreaming(t *testing.T) {
	findings := lintFixtures(t, lint.DefaultConfig(), map[string]string{
		"st/st.go": `package st

// Fold accumulates per-item results — the exact antipattern.
//
//doelint:streaming
func Fold(n int) []int {
	var acc []int
	for i := 0; i < n; i++ {
		acc = append(acc, i) // line 9: finding
		scratch := make([]int, 0, 4)
		scratch = append(scratch, i) // per-iteration scratch: fine
		_ = scratch
	}
	return acc
}

type sink struct{ rows []int }

// Fill accumulates into a field, through a closure.
//
//doelint:streaming
func (s *sink) Fill(n int, each func(func(int))) {
	for i := 0; i < n; i++ {
		each(func(v int) {
			s.rows = append(s.rows, v+i) // line 25: finding
		})
	}
}

// Bounded appends once per worker, a justified bounded accumulation.
//
//doelint:streaming
func Bounded(workers int) [][]int {
	out := make([][]int, 0, workers)
	for w := 0; w < workers; w++ {
		out = append(out, nil) //doelint:allow streaming -- fixture: bounded by worker count, not population
	}
	return out
}

// Plain is unannotated: the check ignores it.
func Plain(n int) []int {
	var acc []int
	for i := 0; i < n; i++ {
		acc = append(acc, i)
	}
	return acc
}
`,
		"st/bad.go": `package st

//doelint:streaming with-arguments
func Bad() {}
`,
	})
	wantFindings(t, findings, "streaming", []string{"st/st.go:9", "st/st.go:25"})
	wantFindings(t, findings, "directive", []string{"st/bad.go:3"})
}
