// Package cli holds the telemetry plumbing shared by the doe command-line
// binaries: the -trace/-metrics/-pprof flags, the live /metrics +
// /debug/pprof endpoint, and the end-of-run artifact flush.
package cli

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"

	"dnsencryption.info/doe/internal/bufpool"
	"dnsencryption.info/doe/internal/core"
	"dnsencryption.info/doe/internal/obs"
)

// Telemetry carries the parsed telemetry flag values of one binary.
type Telemetry struct {
	TracePath string
	Metrics   bool
	PprofAddr string
}

// TelemetryFlags registers -trace, -metrics and -pprof on the default
// FlagSet; call before flag.Parse.
func TelemetryFlags() *Telemetry {
	t := &Telemetry{}
	flag.StringVar(&t.TracePath, "trace", "", "enable telemetry and write the span trace as JSONL to this file")
	flag.BoolVar(&t.Metrics, "metrics", false, "enable telemetry and print the full metric snapshot (volatile families included) to stderr")
	flag.StringVar(&t.PprofAddr, "pprof", "", "enable telemetry and serve /metrics and /debug/pprof on this address (e.g. localhost:6060)")
	return t
}

// Enabled reports whether any telemetry flag was given; the binary sets
// core.Config.Telemetry from it.
func (t *Telemetry) Enabled() bool { return t.TracePath != "" || t.Metrics || t.PprofAddr != "" }

// Serve starts the live debug endpoint when -pprof was given. The endpoint
// is a real HTTP listener (runtime profiling of the binary itself), the
// one deliberate wall-clock surface of the observability stack. Each
// /metrics scrape re-samples process memory and bufpool occupancy, so the
// volatile gauges track the run live; /progress and /healthz ride along.
func (t *Telemetry) Serve(study *core.Study) {
	if t.PprofAddr == "" {
		return
	}
	go func() {
		log.Printf("telemetry endpoint on http://%s/metrics (progress on /progress, pprof under /debug/pprof/)", t.PprofAddr)
		handler := obs.DebugHandler(study.Obs, publishBufpoolStats, obs.SampleMemStats)
		if err := http.ListenAndServe(t.PprofAddr, handler); err != nil {
			log.Printf("pprof endpoint: %v", err)
		}
	}()
}

// Finish flushes the telemetry artifacts: the JSONL trace file and the
// full stderr metric snapshot. Binaries call it after the measurements ran
// and before exiting on error — the trace of a failed run is exactly what
// -trace is for, and a deferred flush would be skipped by log.Fatalf.
func (t *Telemetry) Finish(study *core.Study) error {
	if t.TracePath != "" {
		f, err := os.Create(t.TracePath)
		if err != nil {
			return fmt.Errorf("creating %s: %w", t.TracePath, err)
		}
		if err := study.WriteTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing %s: %w", t.TracePath, err)
		}
	}
	if t.Metrics {
		publishBufpoolStats(study.Obs.Metrics())
		obs.SampleMemStats(study.Obs.Metrics())
		fmt.Fprint(os.Stderr, study.Obs.Metrics().Snapshot(true))
	}
	return nil
}

// publishBufpoolStats copies the process-wide buffer-pool counters into
// volatile gauges just before the snapshot renders. Pool hit rates depend on
// GC timing and goroutine interleaving, so they must never reach the
// deterministic "== telemetry:" section — volatile families only appear in
// the full -metrics/-pprof output.
func publishBufpoolStats(reg *obs.Registry) {
	st := bufpool.Snapshot()
	reg.VolatileGauge("bufpool_gets").Set(int64(st.Gets))
	reg.VolatileGauge("bufpool_puts").Set(int64(st.Puts))
	reg.VolatileGauge("bufpool_hits").Set(int64(st.Hits))
	reg.VolatileGauge("bufpool_misses").Set(int64(st.Misses))
	reg.VolatileGauge("bufpool_drops").Set(int64(st.Drops))
	reg.VolatileGauge("bufpool_in_use").Set(st.InUse())
	for _, c := range st.PerClass {
		class := strconv.Itoa(c.Size)
		reg.VolatileGauge("bufpool_class_gets", "class", class).Set(int64(c.Gets))
		reg.VolatileGauge("bufpool_class_puts", "class", class).Set(int64(c.Puts))
	}
}
