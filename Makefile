# Verify path for the DNS-over-Encryption measurement repo.
#
# `make verify` is what CI runs and what a PR must keep green: build, vet,
# the custom static-analysis suite (cmd/doelint), the test suite, and the
# race detector over the concurrency-heavy packages. The doelint gate also
# runs inside `go test ./...` (internal/lint.TestRepositoryIsClean), so
# plain tier-1 testing cannot drift from the lint suite.

GO ?= go

# Every internal package runs under the race detector. The suite was once a
# hand-curated list of the concurrency-heavy packages; new packages kept
# missing it, so the pattern is now the whole tree and the curation cost is
# paid in CI minutes instead of coverage gaps. The sweep runs -short: the
# full-scale determinism matrices it skips are value checks, re-run
# race-free in `make test`, and their miniature faults-off rows still run
# here; the faults chaos suite keeps its full-fat race pass below.
RACE_PKGS := ./internal/...

# Fuzz targets hardened against panics; fuzz-smoke runs each briefly so a
# codec regression that panics on malformed wire input fails the gate.
FUZZ_PKG := ./internal/dnswire
FUZZ_TARGETS := FuzzParseMessage FuzzParseName FuzzRData FuzzAppendTCP FuzzDoQFrame FuzzQUICVarint
FUZZTIME ?= 10s

.PHONY: verify build vet lint test race bench bench-smoke fuzz-smoke trace-smoke

verify: build vet lint test race bench bench-smoke fuzz-smoke trace-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The interprocedural suite runs against the committed baseline (which the
# repository keeps empty — see DESIGN.md §10) and writes a SARIF log for CI
# annotation. TestRepositoryIsClean additionally asserts the full-module run
# stays under its 5s budget.
DOELINT_SARIF ?= /tmp/doelint.sarif

lint:
	$(GO) run ./cmd/doelint -baseline .doelint-baseline.json -sarif $(DOELINT_SARIF) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 -short -timeout 15m $(RACE_PKGS)
	$(GO) test -race -count=1 ./internal/faults

# One iteration of the worker-count ablation: proves the parallel scan path
# executes end to end. Speedup itself is hardware-dependent (bounded by
# GOMAXPROCS) and is read off full -benchtime runs, not this smoke pass.
bench-smoke:
	$(GO) test -run=NONE -bench='BenchmarkParallelScan' -benchtime=1x .

# One iteration of the curated perf set through cmd/doebench: proves the
# harness parses every benchmark it tracks. Real measurements and the
# allocs/op trajectory diff (-prev BENCH_<n>.json) run full -benchtime in
# the CI bench job; one-iteration counts are too noisy to diff.
bench:
	$(GO) run ./cmd/doebench -smoke

fuzz-smoke:
	@for target in $(FUZZ_TARGETS); do \
		echo "fuzz $$target ($(FUZZTIME))"; \
		$(GO) test $(FUZZ_PKG) -run='^$$' -fuzz="^$$target$$" -fuzztime=$(FUZZTIME) || exit 1; \
	done

# Telemetry end-to-end gate: run the miniature study with tracing on,
# validate the JSONL schema with doetrace, and byte-compare the trace
# against the pinned golden. Catches both schema drift and any change
# that silently reorders or reshapes the span tree.
TRACE_SMOKE_OUT ?= /tmp/doe-trace-smoke.jsonl

trace-smoke:
	$(GO) run ./cmd/doereport -small -trace $(TRACE_SMOKE_OUT) -o /dev/null
	$(GO) run ./cmd/doetrace $(TRACE_SMOKE_OUT)
	$(GO) run ./cmd/doetrace -diff internal/core/testdata/trace_small.jsonl $(TRACE_SMOKE_OUT)
