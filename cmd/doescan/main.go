// Command doescan reproduces §3 of the paper: it builds the study world,
// runs the repeated Internet-wide DoT scans and the DoH URL-corpus
// discovery, and prints Table 2, Figure 3, Figure 4 and the DoH discovery
// summary. (The scanner package also speaks DoQ — UDP/853 discovery with
// QUIC handshake verification via ScanDoQ — which the vantage campaigns
// exercise; the paper-period scan tables remain DoT-only.)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dnsencryption.info/doe/internal/cli"
	"dnsencryption.info/doe/internal/core"
	"dnsencryption.info/doe/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doescan: ")
	seed := flag.Int64("seed", 0, "override the study seed (0 = default)")
	small := flag.Bool("small", false, "use the miniature test-scale world")
	workers := flag.Int("workers", 0, "parallel measurement workers (0 = default; output is identical for any value)")
	faults := flag.String("faults", "", "fault-injection profile: "+strings.Join(core.FaultProfileNames(), ", "))
	faultSeed := flag.Int64("fault-seed", 0, "fault-schedule seed (independent of the study seed)")
	inflight := flag.Int("inflight", -1, "per-session in-flight queries of the multiplexed perf pass (-1 = default, <2 disables)")
	nodes := flag.Int("nodes", 0, "override the global vantage pool size (max "+fmt.Sprint(workload.VantageCapacity)+"; oversized values are an error, never a truncation)")
	tele := cli.TelemetryFlags()
	flag.Parse()

	cfg := core.DefaultConfig()
	if *small {
		cfg = core.TestConfig()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *nodes != 0 {
		if err := core.ValidateScaleNodes(*nodes); err != nil {
			log.Fatalf("-nodes: %v", err)
		}
		cfg.GlobalNodes = *nodes
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *inflight >= 0 {
		cfg.MuxInFlight = *inflight
	}
	if *faults != "" {
		cfg.Faults = core.FaultsConfig{Profile: *faults, Seed: *faultSeed}
	}
	cfg.Telemetry = tele.Enabled()
	study, err := core.NewStudy(cfg)
	if err != nil {
		log.Fatalf("building study world: %v", err)
	}
	tele.Serve(study)

	for _, id := range []string{"table2", "fig3", "fig4", "doh-discovery"} {
		exp, ok := core.ExperimentByID(id)
		if !ok {
			log.Fatalf("unknown experiment %q", id)
		}
		out, err := study.RunExperiment(exp)
		if err != nil {
			if ferr := tele.Finish(study); ferr != nil {
				log.Printf("%v", ferr)
			}
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Fprintf(os.Stdout, "== %s: %s\n%s\n", exp.ID, exp.Title, out)
	}
	if err := tele.Finish(study); err != nil {
		log.Fatalf("%v", err)
	}
}
