package dnsclient

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
)

var (
	clientIP   = netip.MustParseAddr("10.1.0.2")
	resolverIP = netip.MustParseAddr("192.0.2.53")
	fixedIP    = netip.MustParseAddr("203.0.113.7")
)

// fixedHandler answers any A query with fixedIP, at the wire level.
func fixedHandler(_ netip.Addr, req []byte) ([]byte, time.Duration, error) {
	m, err := dnswire.Unpack(req)
	if err != nil {
		return nil, 0, err
	}
	resp := m.Reply()
	resp.AddAnswer(m.Question1().Name, 60, dnswire.A{Addr: fixedIP})
	packed, err := resp.Pack()
	return packed, time.Millisecond, err
}

func newWorld() *netsim.World {
	w := netsim.NewWorld(3)
	w.Geo.Register(netip.MustParsePrefix("10.1.0.0/16"), geo.Location{Country: "US"})
	w.Geo.Register(netip.MustParsePrefix("192.0.2.0/24"), geo.Location{Country: "DE"})
	return w
}

func TestQueryUDP(t *testing.T) {
	w := newWorld()
	w.RegisterDatagram(resolverIP, 53, fixedHandler)
	c := New(w, clientIP)
	res, err := c.QueryUDP(resolverIP, "example.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := res.FirstA(); !ok || a != fixedIP {
		t.Errorf("answer = %v", res.Msg.Answers)
	}
	if res.Rcode() != dnswire.RcodeSuccess {
		t.Errorf("rcode = %v", res.Rcode())
	}
}

func TestQueryUDPNoService(t *testing.T) {
	w := newWorld()
	c := New(w, clientIP)
	c.Retries = 0
	if _, err := c.QueryUDP(resolverIP, "example.com", dnswire.TypeA); err == nil {
		t.Error("query against empty world succeeded")
	}
}

func TestQueryUDPIDMismatchRejected(t *testing.T) {
	w := newWorld()
	w.RegisterDatagram(resolverIP, 53, func(from netip.Addr, req []byte) ([]byte, time.Duration, error) {
		resp, proc, err := fixedHandler(from, req)
		if err == nil {
			resp[0] ^= 0xFF // corrupt the transaction ID
		}
		return resp, proc, err
	})
	c := New(w, clientIP)
	c.Retries = 0
	_, err := c.QueryUDP(resolverIP, "example.com", dnswire.TypeA)
	if !errors.Is(err, ErrIDMismatch) {
		t.Errorf("err = %v, want ErrIDMismatch", err)
	}
}

func serveTCPFixed(w *netsim.World) {
	w.RegisterStream(resolverIP, 53, func(conn *netsim.Conn) {
		defer conn.Close()
		for {
			msg, err := dnswire.ReadTCP(conn)
			if err != nil {
				return
			}
			resp, _, err := fixedHandler(conn.RemoteAddr().(netsim.Addr).IP, msg)
			if err != nil {
				return
			}
			if err := dnswire.WriteTCP(conn, resp); err != nil {
				return
			}
		}
	})
}

func TestQueryTCP(t *testing.T) {
	w := newWorld()
	serveTCPFixed(w)
	c := New(w, clientIP)
	res, err := c.QueryTCP(resolverIP, "example.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if a, ok := res.FirstA(); !ok || a != fixedIP {
		t.Errorf("answer = %v", res.Msg.Answers)
	}
}

func TestTCPConnReuseLatency(t *testing.T) {
	w := newWorld()
	w.JitterFrac = 0
	serveTCPFixed(w)
	c := New(w, clientIP)
	conn, err := c.DialTCP(resolverIP)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.SetupLatency() <= 0 {
		t.Error("setup latency not accounted")
	}
	r1, err := conn.Query("a.example.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := conn.Query("b.example.com", dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	// Reused-connection query ≈ 1 RTT, strictly below setup + query.
	if r2.Latency >= conn.SetupLatency()+r1.Latency {
		t.Errorf("reused latency %v >= setup+first %v", r2.Latency, conn.SetupLatency()+r1.Latency)
	}
}

func TestQueryAfterCloseFails(t *testing.T) {
	w := newWorld()
	serveTCPFixed(w)
	c := New(w, clientIP)
	conn, err := c.DialTCP(resolverIP)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, err := conn.Query("x.example.com", dnswire.TypeA); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestFirstANoAnswer(t *testing.T) {
	res := &Result{Msg: dnswire.NewQuery(1, "x.example", dnswire.TypeA).Reply()}
	if _, ok := res.FirstA(); ok {
		t.Error("FirstA found an answer in empty response")
	}
}
