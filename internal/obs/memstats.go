package obs

import "runtime"

// SampleMemStats publishes a point-in-time runtime.MemStats reading into
// volatile gauges on reg. Everything here is inherently wall-side and
// schedule-dependent, so every family is volatile: the values appear in
// full snapshots (-metrics, /metrics scrapes) and never in the
// deterministic report section. The sampler runs only at exposure time —
// a -metrics dump or an HTTP scrape — never from the simulation's
// virtual-clock path, and it reads no clocks itself (obsclock enforces
// that this package stays off time.*).
//
//   - mem_heap_alloc_bytes: live heap at sample time
//   - mem_high_water_bytes: max heap seen across samples (Gauge.Max, so
//     repeated scrapes and registry merges keep the high-water mark)
//   - mem_heap_sys_bytes, mem_total_alloc_bytes, mem_gc_cycles_total:
//     the usual capacity/churn companions
func SampleMemStats(reg *Registry) {
	if reg == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.VolatileGauge("mem_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	reg.VolatileGauge("mem_high_water_bytes").Max(int64(ms.HeapAlloc))
	reg.VolatileGauge("mem_heap_sys_bytes").Set(int64(ms.HeapSys))
	reg.VolatileGauge("mem_total_alloc_bytes").Set(int64(ms.TotalAlloc))
	reg.VolatileGauge("mem_gc_cycles_total").Set(int64(ms.NumGC))
}
