// Command doetraffic reproduces §5 of the paper: 18 months of sampled
// NetFlow toward DoT resolvers and passive DNS lookups of DoH bootstrap
// domains. It prints Figure 11 (monthly DoT flows), Figure 12 (per-/24
// breakdown), Figure 13 (DoH domain volumes) and the scanner screening.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dnsencryption.info/doe/internal/cli"
	"dnsencryption.info/doe/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("doetraffic: ")
	seed := flag.Int64("seed", 0, "override the study seed (0 = default)")
	scale := flag.Float64("scale", 0, "override the traffic scale (0 = default)")
	workers := flag.Int("workers", 0, "parallel measurement workers (0 = default; output is identical for any value)")
	faults := flag.String("faults", "", "fault-injection profile: "+strings.Join(core.FaultProfileNames(), ", "))
	faultSeed := flag.Int64("fault-seed", 0, "fault-schedule seed (independent of the study seed)")
	inflight := flag.Int("inflight", -1, "per-session in-flight queries of the multiplexed perf pass (-1 = default, <2 disables)")
	tele := cli.TelemetryFlags()
	flag.Parse()

	cfg := core.DefaultConfig()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *scale > 0 {
		cfg.TrafficScale = *scale
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *inflight >= 0 {
		cfg.MuxInFlight = *inflight
	}
	if *faults != "" {
		cfg.Faults = core.FaultsConfig{Profile: *faults, Seed: *faultSeed}
	}
	cfg.Telemetry = tele.Enabled()
	study, err := core.NewStudy(cfg)
	if err != nil {
		log.Fatalf("building study world: %v", err)
	}
	tele.Serve(study)

	for _, id := range []string{"fig11", "fig12", "fig13", "scan-screen"} {
		exp, ok := core.ExperimentByID(id)
		if !ok {
			log.Fatalf("unknown experiment %q", id)
		}
		out, err := study.RunExperiment(exp)
		if err != nil {
			if ferr := tele.Finish(study); ferr != nil {
				log.Printf("%v", ferr)
			}
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Fprintf(os.Stdout, "== %s: %s\n%s\n", exp.ID, exp.Title, out)
	}
	if err := tele.Finish(study); err != nil {
		log.Fatalf("%v", err)
	}
}
