package dnswire

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// ParseRecord parses one zone-file-style resource record line:
//
//	name [ttl] [IN] TYPE rdata...
//
// Relative names are completed with origin; "@" denotes the origin itself.
// defaultTTL applies when the ttl field is absent. Quoted TXT strings are
// supported. Comments (";") must be stripped by the caller (LoadZone does).
func ParseRecord(line, origin string, defaultTTL uint32) (Record, error) {
	fields, err := splitRecordFields(line)
	if err != nil {
		return Record{}, err
	}
	if len(fields) < 2 {
		return Record{}, fmt.Errorf("dnswire: record %q too short", line)
	}
	name := absoluteName(fields[0], origin)
	rest := fields[1:]

	ttl := defaultTTL
	if n, err := strconv.ParseUint(rest[0], 10, 32); err == nil {
		ttl = uint32(n)
		rest = rest[1:]
	}
	if len(rest) > 0 && strings.EqualFold(rest[0], "IN") {
		rest = rest[1:]
	}
	if len(rest) == 0 {
		return Record{}, fmt.Errorf("dnswire: record %q missing type", line)
	}
	rtype, ok := ParseType(strings.ToUpper(rest[0]))
	if !ok {
		return Record{}, fmt.Errorf("dnswire: unknown record type %q", rest[0])
	}
	rdata, err := parseRData(rtype, rest[1:], origin)
	if err != nil {
		return Record{}, fmt.Errorf("dnswire: record %q: %w", line, err)
	}
	return Record{Name: name, Class: ClassINET, TTL: ttl, Data: rdata}, nil
}

func absoluteName(name, origin string) string {
	if name == "@" {
		return CanonicalName(origin)
	}
	if strings.HasSuffix(name, ".") {
		return CanonicalName(name)
	}
	if origin == "" {
		return CanonicalName(name)
	}
	return CanonicalName(name + "." + origin)
}

// splitRecordFields tokenizes a record line, honoring double quotes.
func splitRecordFields(line string) ([]string, error) {
	var fields []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			fields = append(fields, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			if inQuote {
				// Preserve empty strings by flushing even when empty.
				fields = append(fields, "\x00"+cur.String())
				cur.Reset()
				inQuote = false
			} else {
				flush()
				inQuote = true
			}
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("dnswire: unterminated quote in %q", line)
	}
	flush()
	return fields, nil
}

// quoted reports whether a field came from a quoted string, and strips the
// marker.
func quoted(f string) (string, bool) {
	if strings.HasPrefix(f, "\x00") {
		return f[1:], true
	}
	return f, false
}

func parseRData(rtype Type, fields []string, origin string) (RData, error) {
	need := func(n int) error {
		if len(fields) < n {
			return fmt.Errorf("want %d rdata fields, have %d", n, len(fields))
		}
		return nil
	}
	switch rtype {
	case TypeA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil || !addr.Is4() {
			return nil, fmt.Errorf("bad IPv4 address %q", fields[0])
		}
		return A{Addr: addr}, nil
	case TypeAAAA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil || !addr.Is6() || addr.Is4In6() {
			return nil, fmt.Errorf("bad IPv6 address %q", fields[0])
		}
		return AAAA{Addr: addr}, nil
	case TypeNS:
		if err := need(1); err != nil {
			return nil, err
		}
		return NS{Host: absoluteName(fields[0], origin)}, nil
	case TypeCNAME:
		if err := need(1); err != nil {
			return nil, err
		}
		return CNAME{Target: absoluteName(fields[0], origin)}, nil
	case TypePTR:
		if err := need(1); err != nil {
			return nil, err
		}
		return PTR{Target: absoluteName(fields[0], origin)}, nil
	case TypeMX:
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := strconv.ParseUint(fields[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad MX preference %q", fields[0])
		}
		return MX{Preference: uint16(pref), Host: absoluteName(fields[1], origin)}, nil
	case TypeTXT:
		if err := need(1); err != nil {
			return nil, err
		}
		var texts []string
		for _, f := range fields {
			s, _ := quoted(f)
			texts = append(texts, s)
		}
		return TXT{Texts: texts}, nil
	case TypeSRV:
		if err := need(4); err != nil {
			return nil, err
		}
		var nums [3]uint64
		for i := 0; i < 3; i++ {
			n, err := strconv.ParseUint(fields[i], 10, 16)
			if err != nil {
				return nil, fmt.Errorf("bad SRV field %q", fields[i])
			}
			nums[i] = n
		}
		return SRV{
			Priority: uint16(nums[0]), Weight: uint16(nums[1]), Port: uint16(nums[2]),
			Target: absoluteName(fields[3], origin),
		}, nil
	case TypeSOA:
		if err := need(7); err != nil {
			return nil, err
		}
		var nums [5]uint64
		for i := 0; i < 5; i++ {
			n, err := strconv.ParseUint(fields[2+i], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad SOA field %q", fields[2+i])
			}
			nums[i] = n
		}
		return SOA{
			MName: absoluteName(fields[0], origin), RName: absoluteName(fields[1], origin),
			Serial: uint32(nums[0]), Refresh: uint32(nums[1]), Retry: uint32(nums[2]),
			Expire: uint32(nums[3]), Minimum: uint32(nums[4]),
		}, nil
	default:
		return nil, fmt.Errorf("unsupported presentation type %v", rtype)
	}
}
