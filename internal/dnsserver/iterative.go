package dnsserver

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/netsim"
)

// Delegate marks child (a subdomain of the zone) as delegated to nsHost
// with glue address glue. Queries for names at or below child then return a
// referral — NS in the authority section plus glue — instead of an answer,
// which is what iterative resolvers follow down the hierarchy.
func (z *Zone) Delegate(child, nsHost string, glue netip.Addr) *Zone {
	child = dnswire.CanonicalName(child)
	nsHost = dnswire.CanonicalName(nsHost)
	z.mu.Lock()
	defer z.mu.Unlock()
	z.delegations = append(z.delegations, delegation{
		child:   child,
		ns:      dnswire.Record{Name: child, Class: dnswire.ClassINET, TTL: 172800, Data: dnswire.NS{Host: nsHost}},
		glue:    dnswire.Record{Name: nsHost, Class: dnswire.ClassINET, TTL: 172800, Data: dnswire.A{Addr: glue}},
		hasGlue: glue.IsValid(),
	})
	return z
}

type delegation struct {
	child   string
	ns      dnswire.Record
	glue    dnswire.Record
	hasGlue bool
}

// referralFor returns the delegation covering name, if any. Caller holds
// the zone lock.
func (z *Zone) referralFor(name string) (delegation, bool) {
	for _, d := range z.delegations {
		if dnswire.IsSubdomain(name, d.child) {
			return d, true
		}
	}
	return delegation{}, false
}

// Iterative is a resolver that walks the authority hierarchy itself,
// starting from root servers, following referrals — optionally with QNAME
// minimisation (RFC 7816): intermediate servers only ever see the next
// label, not the full query name. Table 8 tracks QM support alongside
// DoT/DoH because both are DNS-privacy mechanisms.
type Iterative struct {
	World *netsim.World
	// Addr is the resolver's own address (source of upstream queries).
	Addr netip.Addr
	// Roots are the root server addresses.
	Roots []netip.Addr
	// QNAMEMinimisation enables RFC 7816 behaviour.
	QNAMEMinimisation bool
	// MaxSteps bounds the referral chase.
	MaxSteps int
	// BaseProc is charged per query on top of upstream round trips.
	BaseProc time.Duration

	mu  sync.Mutex
	log []SentQuery
}

// SentQuery records one upstream question, for privacy-leak inspection.
type SentQuery struct {
	Server netip.Addr
	Name   string
	Type   dnswire.Type
}

// NewIterative builds an iterative resolver.
func NewIterative(w *netsim.World, addr netip.Addr, roots []netip.Addr) *Iterative {
	return &Iterative{
		World:    w,
		Addr:     addr,
		Roots:    roots,
		MaxSteps: 16,
		BaseProc: 500 * time.Microsecond,
	}
}

// SentQueries returns a copy of every upstream question asked so far.
func (r *Iterative) SentQueries() []SentQuery {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SentQuery(nil), r.log...)
}

// ResetLog clears the upstream question log.
func (r *Iterative) ResetLog() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = nil
}

func (r *Iterative) exchange(server netip.Addr, name string, qtype dnswire.Type) (*dnswire.Message, time.Duration, error) {
	r.mu.Lock()
	r.log = append(r.log, SentQuery{Server: server, Name: dnswire.CanonicalName(name), Type: qtype})
	r.mu.Unlock()
	q := dnswire.NewQuery(dnswire.NewID(), name, qtype)
	q.RecursionDesired = false
	packed, err := q.Pack()
	if err != nil {
		return nil, 0, err
	}
	raw, elapsed, err := r.World.Exchange(r.Addr, server, 53, packed)
	if err != nil {
		return nil, elapsed, err
	}
	m, err := dnswire.Unpack(raw)
	return m, elapsed, err
}

// suffixOf returns the last n labels of name as a canonical name.
func suffixOf(name string, n int) string {
	labels := strings.Split(strings.TrimSuffix(dnswire.CanonicalName(name), "."), ".")
	if n >= len(labels) {
		return dnswire.CanonicalName(name)
	}
	return dnswire.CanonicalName(strings.Join(labels[len(labels)-n:], "."))
}

func labelCount(name string) int {
	name = strings.TrimSuffix(dnswire.CanonicalName(name), ".")
	if name == "" {
		return 0
	}
	return strings.Count(name, ".") + 1
}

// glueAddrs extracts referral nameserver addresses from a response.
func glueAddrs(m *dnswire.Message) []netip.Addr {
	var out []netip.Addr
	nsTargets := map[string]bool{}
	for _, rr := range append(append([]dnswire.Record{}, m.Answers...), m.Authorities...) {
		if ns, ok := rr.Data.(dnswire.NS); ok {
			nsTargets[dnswire.CanonicalName(ns.Host)] = true
		}
	}
	for _, rr := range m.Additionals {
		if a, ok := rr.Data.(dnswire.A); ok && nsTargets[dnswire.CanonicalName(rr.Name)] {
			out = append(out, a.Addr)
		}
	}
	return out
}

// ServeDNS implements Handler.
func (r *Iterative) ServeDNS(_ netip.Addr, req *dnswire.Message) (*dnswire.Message, time.Duration) {
	q := req.Question1()
	resp := req.Reply()
	proc := r.BaseProc

	servers := r.Roots
	full := dnswire.CanonicalName(q.Name)
	depth := 1 // labels revealed so far under QM

	for step := 0; step < r.MaxSteps; step++ {
		if len(servers) == 0 {
			resp.Rcode = dnswire.RcodeServFail
			return resp, proc
		}
		name, qtype := full, q.Type
		minimized := false
		if r.QNAMEMinimisation && depth < labelCount(full) {
			name, qtype = suffixOf(full, depth), dnswire.TypeNS
			minimized = true
		}
		m, elapsed, err := r.exchange(servers[0], name, qtype)
		proc += elapsed
		if err != nil {
			resp.Rcode = dnswire.RcodeServFail
			return resp, proc
		}
		switch {
		case len(m.Answers) > 0:
			if !minimized {
				resp.Rcode = m.Rcode
				resp.Answers = append(resp.Answers, m.Answers...)
				return resp, proc
			}
			// Intermediate NS answer: descend using its glue.
			if next := glueAddrs(m); len(next) > 0 {
				servers = next
			}
			depth++
		case len(glueAddrs(m)) > 0:
			// Referral: follow the delegation.
			servers = glueAddrs(m)
			if minimized {
				depth++
			}
		case minimized && (m.Rcode == dnswire.RcodeNXDomain || m.Rcode == dnswire.RcodeRefused):
			// Empty non-terminal or an old server confused by the
			// minimized query: RFC 7816's fallback is to reveal more.
			depth++
		case minimized && m.Rcode == dnswire.RcodeSuccess:
			// NODATA for the intermediate NS query: the same server is
			// authoritative deeper; reveal the next label.
			depth++
		default:
			resp.Rcode = m.Rcode
			resp.Authorities = append(resp.Authorities, m.Authorities...)
			return resp, proc
		}
	}
	resp.Rcode = dnswire.RcodeServFail
	return resp, proc
}

// String describes the resolver configuration.
func (r *Iterative) String() string {
	return fmt.Sprintf("iterative{roots: %d, qmin: %v}", len(r.Roots), r.QNAMEMinimisation)
}
