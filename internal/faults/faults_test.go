package faults_test

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"dnsencryption.info/doe/internal/faults"
	"dnsencryption.info/doe/internal/geo"
	"dnsencryption.info/doe/internal/netsim"
)

var (
	vantageA = netip.MustParseAddr("10.1.2.3")
	vantageB = netip.MustParseAddr("10.9.8.7")
	outside  = netip.MustParseAddr("172.16.1.1")
	target   = netip.MustParseAddr("192.0.2.53")
)

func newGeo() *geo.Registry {
	g := &geo.Registry{}
	g.Register(netip.MustParsePrefix("10.1.0.0/16"), geo.Location{Country: "ID"})
	g.Register(netip.MustParsePrefix("10.9.0.0/16"), geo.Location{Country: "DE"})
	g.Register(netip.MustParsePrefix("192.0.2.0/24"), geo.Location{Country: "NL"})
	return g
}

// schedule materializes the first n stream-fault decisions for a tuple.
func schedule(inj *faults.Injector, from netip.Addr, n int) []netsim.DialFault {
	out := make([]netsim.DialFault, n)
	for i := range out {
		out[i] = inj.StreamFault(from, target, 853)
	}
	return out
}

func TestSameSeedSameSchedule(t *testing.T) {
	mk := func() *faults.Injector {
		inj := faults.New(42, newGeo())
		inj.Default = faults.Harsh()
		return inj
	}
	a := schedule(mk(), vantageA, 200)
	b := schedule(mk(), vantageA, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: %+v vs %+v", i+1, a[i], b[i])
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	one := faults.New(1, newGeo())
	one.Default = faults.Harsh()
	two := faults.New(2, newGeo())
	two.Default = faults.Harsh()
	a, b := schedule(one, vantageA, 200), schedule(two, vantageA, 200)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("200 attempts identical under different seeds")
	}
}

// TestScheduleIndependentOfOtherTuples is the determinism contract: the
// faults a tuple sees must not depend on what other tuples did in between,
// or on how goroutines interleave — exactly what changing the worker count
// changes.
func TestScheduleIndependentOfOtherTuples(t *testing.T) {
	quiet := faults.New(7, newGeo())
	quiet.Default = faults.Harsh()
	alone := schedule(quiet, vantageA, 100)

	busy := faults.New(7, newGeo())
	busy.Default = faults.Harsh()
	// Hammer an unrelated tuple from many goroutines while tuple A's
	// schedule is consumed serially.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					busy.StreamFault(vantageB, target, 853)
					busy.DatagramFault(vantageB, target, 53)
				}
			}
		}()
	}
	interleaved := schedule(busy, vantageA, 100)
	close(stop)
	wg.Wait()

	for i := range alone {
		if alone[i] != interleaved[i] {
			t.Fatalf("attempt %d diverged under concurrent load: %+v vs %+v",
				i+1, alone[i], interleaved[i])
		}
	}
}

func TestSourcesGateExcludesInfrastructure(t *testing.T) {
	inj := faults.New(3, newGeo())
	inj.Default = faults.Harsh()
	inj.Sources = []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")}
	for i := 0; i < 300; i++ {
		if f := inj.StreamFault(outside, target, 853); f != (netsim.DialFault{}) {
			t.Fatalf("ungated source faulted: %+v", f)
		}
		if f := inj.DatagramFault(outside, target, 53); f != (netsim.DatagramFault{}) {
			t.Fatalf("ungated source datagram-faulted: %+v", f)
		}
	}
	st := inj.Stats()
	if st.StreamDials != 0 || st.Datagrams != 0 {
		t.Fatalf("gated-out flows were consulted: %+v", st)
	}
	// A gated source under Harsh must fault eventually.
	faulted := false
	for i := 0; i < 300 && !faulted; i++ {
		f := inj.StreamFault(vantageA, target, 853)
		faulted = f.Drop || f.Refuse || f.CutAfterSegments > 0 || f.ExtraLatency > 0
	}
	if !faulted {
		t.Fatal("gated source never faulted under Harsh in 300 attempts")
	}
}

func TestRegionsOverrideDefault(t *testing.T) {
	inj := faults.New(5, newGeo())
	inj.Default = faults.Profile{} // clean baseline
	inj.Regions = map[string]faults.Profile{"ID": {Refuse: 1.0}}
	if f := inj.StreamFault(vantageA, target, 853); !f.Refuse {
		t.Errorf("ID-region flow not refused: %+v", f)
	}
	if f := inj.StreamFault(vantageB, target, 853); f != (netsim.DialFault{}) {
		t.Errorf("DE-region flow faulted under clean default: %+v", f)
	}
}

func TestFlakyFailsExactlyFirstN(t *testing.T) {
	inj := faults.New(11, nil)
	inj.Default = faults.Flaky(2)
	sched := schedule(inj, vantageA, 6)
	for i, f := range sched {
		if want := i < 2; f.Refuse != want {
			t.Errorf("attempt %d: Refuse = %v, want %v", i+1, f.Refuse, want)
		}
	}
	st := inj.Stats()
	if st.FlakyFailures != 2 || st.StreamDials != 6 {
		t.Errorf("stats = %+v, want 2 flaky failures over 6 dials", st)
	}
	if st.Faulted() != 2 {
		t.Errorf("Faulted() = %d, want 2", st.Faulted())
	}
}

func TestResetWindowBoundsCutSegment(t *testing.T) {
	inj := faults.New(13, nil)
	inj.Default = faults.Profile{Reset: 1.0, ResetWindow: 6}
	for i := 0; i < 200; i++ {
		f := inj.StreamFault(vantageA, target, 853)
		if f.CutAfterSegments < 2 || f.CutAfterSegments >= 2+6 {
			t.Fatalf("attempt %d: cut segment %d outside [2, 8)", i+1, f.CutAfterSegments)
		}
	}
}

func TestHandshakeCutIsFirstSegment(t *testing.T) {
	inj := faults.New(17, nil)
	inj.Default = faults.Profile{HandshakeCut: 1.0}
	if f := inj.StreamFault(vantageA, target, 853); f.CutAfterSegments != 1 {
		t.Errorf("CutAfterSegments = %d, want 1 (before any server data)", f.CutAfterSegments)
	}
}

func TestStallChargesBoundedLatency(t *testing.T) {
	inj := faults.New(19, nil)
	base := 40 * time.Millisecond
	inj.Default = faults.Profile{Stall: 1.0, StallBase: base}
	for i := 0; i < 100; i++ {
		f := inj.StreamFault(vantageA, target, 853)
		if f.ExtraLatency < base || f.ExtraLatency >= 2*base {
			t.Fatalf("stall latency %v outside [%v, %v)", f.ExtraLatency, base, 2*base)
		}
		if f.Drop || f.Refuse || f.CutAfterSegments > 0 {
			t.Fatalf("pure stall also failed the dial: %+v", f)
		}
	}
}

func TestDatagramFaultRates(t *testing.T) {
	inj := faults.New(23, nil)
	inj.Default = faults.Profile{DgramDrop: 0.5, DgramStall: 0.5, StallBase: 10 * time.Millisecond}
	drops := 0
	for i := 0; i < 400; i++ {
		f := inj.DatagramFault(vantageA, target, 53)
		if f.Drop {
			drops++
			if f.ExtraLatency != 0 {
				t.Fatal("dropped datagram also stalled")
			}
		}
	}
	if drops < 120 || drops > 280 {
		t.Errorf("drops = %d/400, want ≈200", drops)
	}
	st := inj.Stats()
	if st.Datagrams != 400 || st.DgramDrops != uint64(drops) {
		t.Errorf("stats = %+v", st)
	}
}

func TestZeroProfileInjectsNothing(t *testing.T) {
	inj := faults.New(29, nil)
	for i := 0; i < 100; i++ {
		if f := inj.StreamFault(vantageA, target, 853); f != (netsim.DialFault{}) {
			t.Fatalf("zero profile faulted: %+v", f)
		}
	}
	if st := inj.Stats(); st != (faults.Stats{}) {
		t.Errorf("zero profile recorded stats: %+v", st)
	}
}
