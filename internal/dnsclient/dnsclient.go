// Package dnsclient is the stub-resolver side of clear-text DNS: queries
// over UDP (the Internet's default) and over TCP (RFC 7766), the latter with
// explicit connection reuse — the baseline the paper compares DoT and DoH
// against ("we regard DNS/TCP as a reasonable baseline for clear-text DNS").
package dnsclient

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"dnsencryption.info/doe/internal/bufpool"
	"dnsencryption.info/doe/internal/dnswire"
	"dnsencryption.info/doe/internal/netsim"
)

// Errors surfaced to measurement code.
var (
	ErrIDMismatch = errors.New("dnsclient: response ID does not match query")
	ErrClosed     = errors.New("dnsclient: connection closed")
)

// Result is one completed DNS transaction.
type Result struct {
	Msg *dnswire.Message
	// Latency is the virtual time the transaction took, as a client
	// would measure it.
	Latency time.Duration
}

// Rcode is shorthand for the response code.
func (r *Result) Rcode() dnswire.Rcode { return r.Msg.Rcode }

// FirstA returns the first A answer, if any.
func (r *Result) FirstA() (netip.Addr, bool) { return r.Msg.FirstA() }

// Client issues clear-text DNS queries from a fixed vantage address.
type Client struct {
	World *netsim.World
	From  netip.Addr
	// Timeout is the real-time bound per transaction (protective only;
	// latency measurements use virtual time). Zero — the default — means
	// no bound: a wall-clock watchdog that fires on a slow host would
	// fail a query that succeeds on a fast one, and a query dropping out
	// of a campaign shifts medians, so results would depend on host
	// scheduling. Set it only when probing deadline behaviour itself.
	Timeout time.Duration
	// Retries is the number of additional UDP attempts on failure.
	Retries int
}

// New creates a client with sensible defaults.
func New(w *netsim.World, from netip.Addr) *Client {
	return &Client{World: w, From: from, Retries: 1}
}

// Deadline resolves a transaction's real-time guard: the earlier of the
// context deadline and now+timeout. Contexts carry cancellation across the
// client packages; the timeout field remains the per-transaction default. A
// timeout <= 0 disables the per-transaction guard entirely — only the
// context deadline (if any) applies, and the zero time.Time returned when
// the context has none means "no deadline" to the connection layer.
//
//doelint:clockboundary -- real-time watchdog only; it aborts a hung transaction and never enters simulated results
func Deadline(ctx context.Context, timeout time.Duration) time.Time {
	if timeout <= 0 {
		if cd, ok := ctx.Deadline(); ok {
			return cd
		}
		return time.Time{}
	}
	d := time.Now().Add(timeout)
	if cd, ok := ctx.Deadline(); ok && cd.Before(d) {
		return cd
	}
	return d
}

// QueryUDP performs a DNS-over-UDP lookup.
//
// Deprecated: use QueryUDPContext; this delegates with context.Background().
func (c *Client) QueryUDP(server netip.Addr, name string, qtype dnswire.Type) (*Result, error) {
	return c.QueryUDPContext(context.Background(), server, name, qtype)
}

// QueryUDPContext performs a DNS-over-UDP lookup, honouring ctx between
// retry attempts.
func (c *Client) QueryUDPContext(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type) (*Result, error) {
	q := dnswire.NewQuery(dnswire.NewID(), name, qtype)
	packed, err := q.Pack()
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dnsclient: UDP query: %w", err)
		}
		raw, elapsed, err := c.World.Exchange(c.From, server, 53, packed)
		if err != nil {
			lastErr = err
			continue
		}
		m, err := dnswire.Unpack(raw)
		if err != nil {
			lastErr = err
			continue
		}
		if m.ID != q.ID {
			lastErr = ErrIDMismatch
			continue
		}
		return &Result{Msg: m, Latency: elapsed}, nil
	}
	return nil, fmt.Errorf("dnsclient: UDP query failed after %d attempts: %w", c.Retries+1, lastErr)
}

// QueryTCP performs a DNS-over-TCP lookup on a fresh connection, including
// connection setup in the reported latency.
//
// Deprecated: use QueryTCPContext; this delegates with context.Background().
func (c *Client) QueryTCP(server netip.Addr, name string, qtype dnswire.Type) (*Result, error) {
	return c.QueryTCPContext(context.Background(), server, name, qtype)
}

// QueryTCPContext performs a DNS-over-TCP lookup on a fresh connection.
func (c *Client) QueryTCPContext(ctx context.Context, server netip.Addr, name string, qtype dnswire.Type) (*Result, error) {
	conn, err := c.DialTCPContext(ctx, server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return conn.QueryContext(ctx, name, qtype)
}

// TCPConn is a reusable DNS-over-TCP connection. By default it is serial —
// safe for sequential use, one query in flight at a time. Pipeline upgrades
// it to an RFC 7766 pipelined session whose QueryContext is safe for
// concurrent use up to the chosen in-flight limit.
type TCPConn struct {
	mu   sync.Mutex
	mux  *Mux
	conn *netsim.Conn
	// ids generates this connection's transaction IDs without touching
	// the process-wide idSource lock.
	ids dnswire.IDGen
	// wbuf/rbuf are the connection's pooled scratch buffers, guarded by
	// mu like the connection itself and returned on Close.
	wbuf, rbuf *[]byte
	// established is the virtual time consumed before the first query
	// (TCP handshake).
	established time.Duration
	closed      bool
}

// DialTCP opens a reusable DNS-over-TCP connection to server:53.
//
// Deprecated: use DialTCPContext; this delegates with context.Background().
func (c *Client) DialTCP(server netip.Addr) (*TCPConn, error) {
	return c.DialTCPContext(context.Background(), server)
}

// DialTCPContext opens a reusable DNS-over-TCP connection to server:53.
func (c *Client) DialTCPContext(ctx context.Context, server netip.Addr) (*TCPConn, error) {
	return c.DialTCPPortContext(ctx, server, 53)
}

// DialTCPPort opens a reusable DNS-over-TCP connection to an arbitrary port.
//
// Deprecated: use DialTCPPortContext; this delegates with
// context.Background().
func (c *Client) DialTCPPort(server netip.Addr, port uint16) (*TCPConn, error) {
	return c.DialTCPPortContext(context.Background(), server, port)
}

// DialTCPPortContext opens a reusable DNS-over-TCP connection to an
// arbitrary port, bounded by the context deadline if one is set.
func (c *Client) DialTCPPortContext(ctx context.Context, server netip.Addr, port uint16) (*TCPConn, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dnsclient: dial: %w", err)
	}
	conn, err := c.World.Dial(c.From, server, port)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(Deadline(ctx, c.Timeout))
	return TCPFromConn(conn), nil
}

// TCPFromConn wraps an already established stream (e.g. a SOCKS tunnel) as
// a DNS-over-TCP connection.
func TCPFromConn(conn *netsim.Conn) *TCPConn {
	return &TCPConn{
		conn:        conn,
		ids:         dnswire.NewIDGen(),
		wbuf:        bufpool.Get(512), //doelint:transfer -- owned by TCPConn; released in Close
		rbuf:        bufpool.Get(512), //doelint:transfer -- owned by TCPConn; released in Close
		established: conn.Elapsed(),
	}
}

// Pipeline upgrades the connection to a pipelined session with the given
// in-flight limit (limit <= 0 selects DefaultMaxInFlight) and returns its
// Mux. After Pipeline, QueryContext routes through the mux and is safe for
// concurrent use; callers wanting coalesced deterministic bursts use the
// Mux's Batch directly. Pipeline is idempotent — later calls return the
// existing mux regardless of limit.
func (t *TCPConn) Pipeline(limit int) *Mux {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.mux == nil && !t.closed {
		t.mux = NewMux(t.conn, t.conn, limit)
	}
	return t.mux
}

// SetupLatency is the virtual time spent establishing the connection.
func (t *TCPConn) SetupLatency() time.Duration { return t.established }

// Elapsed is the total virtual time the connection has consumed.
func (t *TCPConn) Elapsed() time.Duration { return t.conn.Elapsed() }

// Query sends one query on the (possibly reused) connection. Latency covers
// only this transaction, as observed on an already open connection.
func (t *TCPConn) Query(name string, qtype dnswire.Type) (*Result, error) {
	return t.QueryContext(context.Background(), name, qtype)
}

// QueryContext sends one query on the (possibly reused) connection,
// checking ctx before the transaction starts. Steady-state transactions
// reuse the connection's scratch buffers: pack and frame into wbuf, one
// write, read into rbuf, parse.
//
//doelint:hotpath
func (t *TCPConn) QueryContext(ctx context.Context, name string, qtype dnswire.Type) (*Result, error) {
	t.mu.Lock()
	if m := t.mux; m != nil {
		t.mu.Unlock()
		return m.Exchange(ctx, name, qtype)
	}
	defer t.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dnsclient: query: %w", err)
	}
	if t.closed {
		return nil, ErrClosed
	}
	q := dnswire.NewQuery(t.ids.Next(), name, qtype)
	start := t.conn.Elapsed()
	out, err := dnswire.WriteMessageTCP(t.conn, q, *t.wbuf)
	*t.wbuf = out
	if err != nil {
		return nil, err
	}
	raw, err := dnswire.ReadTCPAppend(t.conn, (*t.rbuf)[:0])
	if err != nil {
		return nil, err
	}
	*t.rbuf = raw
	m, err := dnswire.Unpack(raw)
	if err != nil {
		return nil, err
	}
	if m.ID != q.ID {
		return nil, ErrIDMismatch
	}
	return &Result{Msg: m, Latency: t.conn.Elapsed() - start}, nil
}

// Close releases the connection.
func (t *TCPConn) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	if t.mux != nil {
		t.mux.Close()
	}
	bufpool.Put(t.wbuf)
	bufpool.Put(t.rbuf)
	t.wbuf, t.rbuf = nil, nil
	return t.conn.Close()
}
